"""Benchmark timing harness, report schema, and baseline comparison.

One report is a JSON document (``BENCH_<timestamp>.json``)::

    {
      "schema_version": 2,
      "schema": 2,                    # legacy spelling, same number
      "kind": "repro-bench",
      "generated_at": "...",          # UTC ISO-8601
      "quick": false,
      "python": "3.12.1 ...",
      "platform": "Linux-...",
      "machine": "x86_64",
      "numpy": "2.4.6",               # null on numpy-less installs
      "benchmarks": [
        {
          "name": "crypto.ctr_keystream",
          "tags": ["crypto", "vector"],
          "items": 1024,              # work units per call (throughput basis)
          "modes": {
            "vector": {"median_s": ..., "p10_s": ..., "p90_s": ...,
                        "mean_s": ..., "min_s": ..., "max_s": ...,
                        "repeat": 7, "warmup": 2,
                        "throughput_items_per_s": ...},
            "scalar": {...}
          },
          "speedup": 42.0,            # scalar median / vector median
          "extra": {...}              # optional free-form workload metrics
                                      # (e.g. serve claim-latency p50/p90,
                                      # queue-depth series); never compared
        }, ...
      ]
    }

Comparison (``repro bench --compare BASELINE --threshold 1.25``) checks
each (benchmark, mode) median against the baseline's and flags a
regression when ``current > baseline * threshold``. Readers check
``schema_version`` first (:func:`repro.schema.check_schema_version`), so a
stale baseline fails with :class:`repro.errors.SchemaVersionError` rather
than a KeyError mid-comparison.
"""

from __future__ import annotations

import datetime
import platform
import random
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import vec
from repro.errors import ConfigError
from repro.perf.registry import BenchSpec
from repro.schema import check_schema_version

#: ``BENCH_*.json`` layout version; bump on breaking changes.
#: 1 -> 2: explicit ``schema_version`` field + trace_replay bench family.
BENCH_SCHEMA = 2
REPORT_KIND = "repro-bench"

#: Mode labels. ``vector`` is "whatever the gate picks normally" — on a
#: numpy-less install it degrades to the scalar loops and speedup is ~1.
MODE_VECTOR = "vector"
MODE_SCALAR = "scalar"

_FULL_REPEAT, _FULL_WARMUP = 7, 2
_QUICK_REPEAT, _QUICK_WARMUP = 3, 1


@dataclass
class BenchContext:
    """What a benchmark factory gets to size and seed its workload."""

    quick: bool
    seed: int = 0xBEEF
    #: Work units one workload call processes; factories set it so the
    #: harness can report throughput. 0 means "unknown".
    items: int = 0
    #: Free-form JSON-safe metrics a workload records as it runs (e.g.
    #: the serve load benches' claim-latency percentiles and queue-depth
    #: series); lands in the report record under ``"extra"``. Baseline
    #: comparison ignores it — extras are observability, not a gate.
    extra: Dict[str, object] = field(default_factory=dict)
    rng: random.Random = field(init=False)

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)

    def n(self, full: int, quick: Optional[int] = None) -> int:
        """Problem size: ``full`` normally, ``quick`` (default full/8) in
        ``--quick`` mode."""
        if not self.quick:
            return full
        return quick if quick is not None else max(1, full // 8)

    def random_bytes(self, count: int) -> bytes:
        return self.rng.randbytes(count)


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an ascending sequence."""
    if not sorted_values:
        raise ConfigError("percentile of an empty sample")
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def _time_workload(workload: Callable[[], object], repeat: int, warmup: int) -> List[float]:
    for _ in range(warmup):
        workload()
    samples: List[float] = []
    for _ in range(repeat):
        start = time.perf_counter()
        workload()
        samples.append(time.perf_counter() - start)
    return samples


def _mode_record(samples: List[float], items: int, warmup: int) -> dict:
    ordered = sorted(samples)
    median = _percentile(ordered, 0.5)
    record = {
        "median_s": median,
        "p10_s": _percentile(ordered, 0.1),
        "p90_s": _percentile(ordered, 0.9),
        "mean_s": sum(ordered) / len(ordered),
        "min_s": ordered[0],
        "max_s": ordered[-1],
        "repeat": len(ordered),
        "warmup": warmup,
        "throughput_items_per_s": (items / median) if items and median > 0 else None,
    }
    return record


def run_spec(spec: BenchSpec, quick: bool = False) -> dict:
    """Time one benchmark in each of its modes; returns its report record.

    A factory-returned workload may carry a ``close`` attribute — a
    zero-argument teardown the harness calls once that mode's timing is
    done (the serve load benches use it to stop their localhost server
    and delete its temp queue). Anything the workload put into
    ``context.extra`` rides along in the record under ``"extra"``.
    """
    repeat = _QUICK_REPEAT if quick else _FULL_REPEAT
    warmup = _QUICK_WARMUP if quick else _FULL_WARMUP
    modes: Dict[str, dict] = {}
    items = 0
    extra: Optional[Dict[str, object]] = None
    mode_plan = [MODE_VECTOR, MODE_SCALAR] if spec.paired else [MODE_VECTOR]
    for mode in mode_plan:
        context = BenchContext(quick=quick)
        if mode == MODE_SCALAR:
            with vec.scalar_fallback():
                workload = spec.factory(context)
                samples = _time_and_close(workload, repeat, warmup)
        else:
            workload = spec.factory(context)
            samples = _time_and_close(workload, repeat, warmup)
        items = context.items or items
        if context.extra:
            extra = dict(context.extra)
        modes[mode] = _mode_record(samples, context.items, warmup)
    speedup = None
    if spec.paired:
        vector_median = modes[MODE_VECTOR]["median_s"]
        scalar_median = modes[MODE_SCALAR]["median_s"]
        if vector_median > 0:
            speedup = scalar_median / vector_median
    record = {
        "name": spec.name,
        "tags": list(spec.tags),
        "description": spec.description,
        "items": items,
        "modes": modes,
        "speedup": speedup,
    }
    if extra is not None:
        record["extra"] = extra
    return record


def _time_and_close(workload: Callable[[], object], repeat: int, warmup: int) -> List[float]:
    """Time a workload, then run its ``close`` teardown if it has one."""
    try:
        return _time_workload(workload, repeat, warmup)
    finally:
        close = getattr(workload, "close", None)
        if callable(close):
            close()


def run_benchmarks(
    specs: Sequence[BenchSpec],
    quick: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run ``specs`` and assemble the full report document."""
    records = []
    for spec in specs:
        record = run_spec(spec, quick=quick)
        records.append(record)
        if progress is not None:
            progress(format_record_line(record))
    return {
        "schema_version": BENCH_SCHEMA,
        "schema": BENCH_SCHEMA,  # legacy spelling kept for older tooling
        "kind": REPORT_KIND,
        "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "quick": quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": vec.NUMPY_VERSION,
        "benchmarks": records,
    }


def format_record_line(record: dict) -> str:
    """One human-readable summary line per benchmark."""
    vector = record["modes"].get(MODE_VECTOR)
    parts = [f"{record['name']:<28}"]
    if vector is not None:
        parts.append(f"median {vector['median_s'] * 1e3:9.3f} ms")
        throughput = vector.get("throughput_items_per_s")
        if throughput:
            parts.append(f"{throughput:12.0f} items/s")
    if record.get("speedup") is not None:
        parts.append(f"speedup {record['speedup']:6.2f}x")
    return "  ".join(parts)


#: How to re-record a bench document that fails the version check.
_BENCH_REFRESH_HINT = (
    "Re-record it with `python -m repro bench --json <path>` "
    "(add --quick for the committed benchmarks/baseline.json)."
)


def validate_report(report: dict) -> List[str]:
    """Schema sanity check; returns a list of problems (empty = valid).

    Raises :class:`repro.errors.SchemaVersionError` when the document was
    written under a different ``schema_version`` — everything else about
    such a report is suspect, so no problem list is attempted.
    """
    check_schema_version(report, BENCH_SCHEMA, "bench report", _BENCH_REFRESH_HINT)
    problems: List[str] = []
    if report.get("kind") != REPORT_KIND:
        problems.append(f"kind must be {REPORT_KIND!r}, got {report.get('kind')!r}")
    for key in ("generated_at", "python", "platform", "benchmarks"):
        if key not in report:
            problems.append(f"missing key {key!r}")
    for record in report.get("benchmarks", []):
        name = record.get("name", "<unnamed>")
        if not record.get("modes"):
            problems.append(f"{name}: no modes")
            continue
        for mode, stats in record["modes"].items():
            for stat_key in ("median_s", "p10_s", "p90_s", "repeat"):
                if stat_key not in stats:
                    problems.append(f"{name}/{mode}: missing {stat_key!r}")
            if stats.get("median_s", 0) < 0:
                problems.append(f"{name}/{mode}: negative median")
    return problems


@dataclass(frozen=True)
class Regression:
    """One (benchmark, mode) that got slower than the baseline allows."""

    name: str
    mode: str
    baseline_s: float
    current_s: float
    ratio: float


def compare_reports(
    current: dict, baseline: dict, threshold: float = 1.25
) -> Tuple[List[str], List[Regression]]:
    """Compare per-mode medians against a baseline report.

    Returns human-readable lines plus the regressions (``current >
    baseline * threshold``). Benchmarks present on only one side are
    reported informationally, never as failures — the suite is allowed
    to grow.
    """
    if threshold <= 0:
        raise ConfigError("threshold must be positive")
    check_schema_version(current, BENCH_SCHEMA, "bench report", _BENCH_REFRESH_HINT)
    check_schema_version(baseline, BENCH_SCHEMA, "bench baseline", _BENCH_REFRESH_HINT)
    if current.get("quick") != baseline.get("quick"):
        raise ConfigError(
            "cannot compare across --quick modes: current quick="
            f"{current.get('quick')!r}, baseline quick={baseline.get('quick')!r} "
            "(re-run with matching flags or refresh the baseline)"
        )
    base_by_name = {r["name"]: r for r in baseline.get("benchmarks", [])}
    lines: List[str] = []
    regressions: List[Regression] = []
    for record in current.get("benchmarks", []):
        name = record["name"]
        base = base_by_name.pop(name, None)
        if base is None:
            lines.append(f"{name}: new benchmark (no baseline)")
            continue
        if record.get("items") != base.get("items"):
            # Different problem sizes make raw medians incomparable.
            lines.append(
                f"{name}: work size changed ({base.get('items')} -> "
                f"{record.get('items')} items), skipping comparison"
            )
            continue
        for mode, stats in record["modes"].items():
            base_stats = base.get("modes", {}).get(mode)
            if base_stats is None:
                lines.append(f"{name}/{mode}: new mode (no baseline)")
                continue
            baseline_s = base_stats["median_s"]
            current_s = stats["median_s"]
            ratio = (current_s / baseline_s) if baseline_s > 0 else float("inf")
            verdict = "ok"
            if ratio > threshold:
                verdict = f"REGRESSION (> {threshold:.2f}x)"
                regressions.append(
                    Regression(
                        name=name,
                        mode=mode,
                        baseline_s=baseline_s,
                        current_s=current_s,
                        ratio=ratio,
                    )
                )
            lines.append(
                f"{name}/{mode}: {current_s * 1e3:.3f} ms vs baseline "
                f"{baseline_s * 1e3:.3f} ms ({ratio:.2f}x) {verdict}"
            )
    for name in base_by_name:
        lines.append(f"{name}: in baseline but not in this run")
    return lines, regressions
