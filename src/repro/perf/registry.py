"""Decorator-based benchmark registry (the perf twin of ``eval.registry``).

A benchmark is a *factory*: the decorated function receives a
:class:`repro.perf.harness.BenchContext` (problem sizes, deterministic RNG)
and returns the zero-argument workload closure the harness times — so
setup cost (building inputs, keying ciphers, growing Merkle trees) never
pollutes the measurement.

``paired=True`` (the default) times the workload twice, once normally and
once under :func:`repro.vec.scalar_fallback`, and reports the speedup of
the vectorized kernel over its scalar reference loop.
"""

from __future__ import annotations

import importlib
import sys
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

#: Modules that register benchmarks; imported by ``load_all``.
BENCH_MODULES: Tuple[str, ...] = (
    "repro.perf.kernels",
    "repro.perf.trace_replay",
    "repro.perf.serve_load",
)


@dataclass(frozen=True)
class BenchSpec:
    """One registered microbenchmark."""

    name: str
    factory: Callable[..., Callable[[], object]]
    module: str
    tags: Tuple[str, ...]
    paired: bool  #: time both vector and scalar modes, report speedup
    description: str


class BenchRegistry:
    """Name -> :class:`BenchSpec`, in registration order."""

    def __init__(self) -> None:
        self._specs: Dict[str, BenchSpec] = {}
        self._loaded = False
        self._load_lock = threading.Lock()

    def register(self, spec: BenchSpec) -> BenchSpec:
        if spec.name in self._specs:
            existing = self._specs[spec.name]
            raise ConfigError(
                f"duplicate benchmark name {spec.name!r}: already registered "
                f"by {existing.module}, re-registered by {spec.module}"
            )
        self._specs[spec.name] = spec
        return spec

    def load_all(self) -> "BenchRegistry":
        """Import every benchmark module (idempotent) and return self.

        A module that is already imported but has no specs here (the
        registry was cleared) is reloaded so its decorators re-register.
        Thread-safe: concurrent first callers serialize on one load
        instead of racing a reload into duplicate registrations.
        """
        if self._loaded:
            return self
        with self._load_lock:
            if self._loaded:
                return self
            registered = {spec.module for spec in self._specs.values()}
            for module in BENCH_MODULES:
                needs_rerun = (
                    self is BENCH_REGISTRY
                    and module in sys.modules
                    and module not in registered
                )
                if needs_rerun:
                    importlib.reload(sys.modules[module])
                else:
                    importlib.import_module(module)
            self._loaded = True
        return self

    def get(self, name: str) -> BenchSpec:
        self.load_all()
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(sorted(self._specs))
            raise ConfigError(f"unknown benchmark {name!r}; known: {known}") from None

    def specs(self) -> List[BenchSpec]:
        self.load_all()
        return list(self._specs.values())

    def select(
        self,
        only: Optional[Sequence[str]] = None,
        tags: Optional[Iterable[str]] = None,
    ) -> List[BenchSpec]:
        """Subset by explicit names and/or required tags, registry order."""
        chosen = self.specs()
        if only is not None:
            wanted = {self.get(name).name for name in only}
            chosen = [s for s in chosen if s.name in wanted]
        if tags:
            required = set(tags)
            chosen = [s for s in chosen if required.issubset(s.tags)]
        return chosen

    def clear(self) -> None:
        """Drop all registrations (test isolation only)."""
        self._specs.clear()
        self._loaded = False


#: The process-wide registry every perf module registers into.
BENCH_REGISTRY = BenchRegistry()


def benchmark(
    name: str,
    *,
    tags: Sequence[str] = (),
    paired: bool = True,
    description: str = "",
    registry: Optional[BenchRegistry] = None,
) -> Callable[[Callable[..., Callable[[], object]]], Callable[..., Callable[[], object]]]:
    """Register the decorated workload factory as a benchmark."""

    def wrap(func: Callable[..., Callable[[], object]]):
        doc = description
        if not doc and func.__doc__:
            doc = func.__doc__.strip().splitlines()[0]
        (registry or BENCH_REGISTRY).register(
            BenchSpec(
                name=name,
                factory=func,
                module=func.__module__,
                tags=tuple(tags),
                paired=paired,
                description=doc,
            )
        )
        return func

    return wrap
