"""The ``trace_replay`` bench family: columnar trace API vs object replay.

Tracks the tentpole win of the :class:`repro.sim.trace_batch.TraceBatch`
redesign. Each paired bench times the batched pass normally and its
``REPRO_NO_VECTORIZE=1`` scalar reference — the original per-``MemAccess``
object loop — so the speedup column is the honest before/after of the
trace-model redesign.

Two kinds of entries:

- *replay* benches (``mee_walk``, ``pipeline_timing``): consume a whole
  trace window through an array-expressible pass — these carry the >=10x
  wins the family gates in CI;
- *tracker* benches (``adam_trace``, ``gemm_trace``, ``sgx_metadata``,
  ``mee_geometry``): trace generation and LRU metadata accounting, whose
  state-serial inner loops cap out lower (the batched pass strips
  per-access objects/Stats/enum overhead but each touch still depends on
  the previous one); tracked so regressions in either mode are caught.
"""

from __future__ import annotations

import random

from repro import vec
from repro.cpu.metadata_model import measure_sgx_metadata
from repro.eval.scenarios import mee_cache_geometry
from repro.mem.mee import FunctionalMee
from repro.npu.config import NpuConfig
from repro.npu.pipeline import simulate_granule_pipeline
from repro.perf.harness import BenchContext
from repro.perf.registry import benchmark
from repro.sim.trace_batch import TraceBatch
from repro.tensor.registry import TensorRegistry
from repro.units import CACHELINE_BYTES, KiB, MiB
from repro.workloads.traces import (
    AdamTraceConfig,
    GemmConfig,
    adam_iteration_batch,
    build_adam_groups,
    build_gemm_tensors,
    gemm_batch,
)

LINE = CACHELINE_BYTES

_AES_KEY = bytes(range(16))
_MAC_KEY = bytes(range(16, 32))


@benchmark("trace_replay.mee_walk", tags=("trace_replay", "mem", "vector"))
def bench_mee_walk(ctx: BenchContext):
    """Replay a trace window through the MEE: batch write+read with Merkle
    walk counting vs the original per-line loop."""
    n_lines = ctx.n(256, 64)
    ctx.items = n_lines
    batch = TraceBatch.reads([i * LINE for i in range(n_lines)])
    vaddrs = batch.columns()[0]
    payload = ctx.random_bytes(n_lines * LINE)
    mee = FunctionalMee(_AES_KEY, _MAC_KEY, protected_bytes=4 * MiB)

    if vec.enabled():

        def run():
            mee.cipher._keystream_block.cache_clear()
            mee.write_lines(vaddrs, payload, vn=None)
            return mee.read_lines(vaddrs, vn=None, verify=True)

        return run

    def run_scalar():
        mee.cipher._keystream_block.cache_clear()
        for i, vaddr in enumerate(vaddrs):
            mee.write_line(vaddr, payload[i * LINE : (i + 1) * LINE], vn=None)
        return [mee.read_line(vaddr, vn=None, verify=True) for vaddr in vaddrs]

    return run_scalar


@benchmark("trace_replay.pipeline_timing", tags=("trace_replay", "npu", "vector"))
def bench_pipeline_timing(ctx: BenchContext):
    """Granule-MAC pipeline timing: array arrival/verify precompute vs the
    event-engine replay."""
    tensor_bytes = ctx.n(8, 2) * (1 << 20)
    ctx.items = tensor_bytes // LINE
    config = NpuConfig()
    compute_per_line = 0.9 * LINE / config.dram.effective_stream_bw

    def run():
        return simulate_granule_pipeline(config, tensor_bytes, 4096, compute_per_line)

    return run


@benchmark("trace_replay.adam_trace", tags=("trace_replay", "workloads", "vector"))
def bench_adam_trace(ctx: BenchContext):
    """Columnar Adam iteration-trace assembly vs the object generator."""
    n_layers = ctx.n(24, 6)
    registry = TensorRegistry(alignment=4 * KiB, guard_bytes=256 * KiB)
    groups = build_adam_groups(registry, n_layers, 64)
    config = AdamTraceConfig(threads=8, seed=ctx.seed)
    ctx.items = len(adam_iteration_batch(groups, config, random.Random(ctx.seed)))

    def run():
        return adam_iteration_batch(groups, config, random.Random(ctx.seed))

    return run


@benchmark("trace_replay.gemm_trace", tags=("trace_replay", "workloads", "vector"))
def bench_gemm_trace(ctx: BenchContext):
    """Columnar tiled-GEMM trace assembly vs the object generator."""
    config = GemmConfig() if ctx.quick else GemmConfig(m=512, n=512, k=512)
    registry = TensorRegistry(alignment=4 * KiB, guard_bytes=256 * KiB)
    a, b, c = build_gemm_tensors(registry, config)
    ctx.items = len(gemm_batch(a, b, c, config))

    def run():
        return gemm_batch(a, b, c, config)

    return run


@benchmark("trace_replay.sgx_metadata", tags=("trace_replay", "mem", "vector"))
def bench_sgx_metadata(ctx: BenchContext):
    """SGX metadata-traffic accounting: inlined LRU replay vs the
    MetadataCache object loop."""
    sample_lines = ctx.n(40_000, 8_000)
    ctx.items = sample_lines

    def run():
        return measure_sgx_metadata(64 * MiB, sample_lines=sample_lines)

    return run


@benchmark("trace_replay.mee_geometry", tags=("trace_replay", "mem", "vector"))
def bench_mee_geometry(ctx: BenchContext):
    """MEE cache-geometry scenario: batched stream precompute + inlined LRU
    vs the scalar MetadataCache walk."""
    iterations = ctx.n(4, 1)
    ctx.items = iterations * 48 * 32

    def run():
        return mee_cache_geometry(iterations=iterations)

    return run
