"""The threat-model adversary (Sec. 2.4).

A bus/privileged-software attacker with full access to everything *off*
chip: DRAM contents, the off-chip metadata stores, and the PCIe link. The
class wraps the raw tamper surfaces of the simulated devices so tests and
examples read like the attack they model.

Nothing here can touch on-chip state (Meta Table, tensor VN/MAC tables,
Merkle root, session keys) — that is the TCB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.mem.mee import FunctionalMee
from repro.tensor.tensor import TensorDesc
from repro.units import CACHELINE_BYTES

LINE = CACHELINE_BYTES


@dataclass
class Adversary:
    """Bus-level attacker against one device's off-chip memory."""

    mee: FunctionalMee
    name: str = "adversary"
    _snapshots: Dict[int, Tuple[bytes, int, int]] = field(default_factory=dict)

    # -- passive -------------------------------------------------------------

    def snoop_line(self, vaddr: int) -> bytes:
        """Observe a line on the bus (ciphertext only — confidentiality)."""
        ciphertext, _ = self.mee.snoop(vaddr)
        return ciphertext

    def snoop_tensor(self, tensor: TensorDesc) -> List[bytes]:
        """Capture a whole tensor's ciphertext."""
        return [self.snoop_line(va) for va in tensor.line_addresses()]

    def snapshot(self, vaddr: int) -> None:
        """Record (ciphertext, MAC, off-chip VN) for a later replay."""
        ciphertext, mac = self.mee.snoop(vaddr)
        index = self.mee._line_index(self.mee._pa_of(vaddr))
        self._snapshots[vaddr] = (ciphertext, mac, self.mee.vn_store.get(index, 0))

    # -- active --------------------------------------------------------------

    def flip_bit(self, vaddr: int, bit: int = 0) -> None:
        """Corrupt stored ciphertext (physical fault / bus manipulation)."""
        self.mee.tamper_ciphertext(vaddr, flip_bit=bit)

    def corrupt_mac(self, vaddr: int) -> None:
        """Corrupt the off-chip MAC store."""
        index = self.mee._line_index(self.mee._pa_of(vaddr))
        self.mee.mac_store[index] = self.mee.mac_store.get(index, 0) ^ 0x1

    def replay(self, vaddr: int, rollback_vn: bool = False) -> None:
        """Write a snapshot back; optionally roll the off-chip VN back too."""
        ciphertext, mac, vn = self._snapshots[vaddr]
        self.mee.replay_line(vaddr, ciphertext, mac)
        if rollback_vn:
            index = self.mee._line_index(self.mee._pa_of(vaddr))
            self.mee.vn_store[index] = vn

    def splice(self, src_vaddr: int, dst_vaddr: int) -> None:
        """Move valid (ciphertext, MAC) from one address to another."""
        ciphertext, mac = self.mee.snoop(src_vaddr)
        self.mee.replay_line(dst_vaddr, ciphertext, mac)
