"""Enclave lifecycle, secure devices and the threat-model attack harness."""

from repro.tee.enclave import Enclave, TrustDomain
from repro.tee.device import CpuSecureDevice, NpuSecureDevice

__all__ = ["Enclave", "TrustDomain", "CpuSecureDevice", "NpuSecureDevice"]
