"""Enclave lifecycle and mutual attestation (Sec. 4.4.2).

Authentication phase of the protocol: the CPU creates its enclave
(measuring code+config into a report), requests an NPU enclave creation,
both sides verify each other's report against expected measurements, then a
DH exchange derives the shared AES/MAC session keys that both memory
encryption engines use — the keys never cross the bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.crypto.attestation import Attestor, measure
from repro.crypto.keys import DiffieHellman, derive_key
from repro.errors import AttestationError, EnclaveError


@dataclass
class Enclave:
    """One enclave instance on a device."""

    name: str
    code: bytes
    config_blob: bytes = b""
    created: bool = False
    measurement: bytes = b""
    _dh: Optional[DiffieHellman] = field(default=None, repr=False)

    def create(self, dh_seed: Optional[int] = None) -> bytes:
        """Copy-in + measure: returns the enclave measurement."""
        if self.created:
            raise EnclaveError(f"enclave {self.name!r} already created")
        self.measurement = measure(self.code, self.config_blob)
        self._dh = DiffieHellman(seed=dh_seed)
        self.created = True
        return self.measurement

    @property
    def dh_public(self) -> int:
        if not self.created or self._dh is None:
            raise EnclaveError(f"enclave {self.name!r} not created")
        return self._dh.public

    def session_keys(self, peer_public: int) -> Tuple[bytes, bytes]:
        """Derive the shared (AES, MAC) session keys."""
        if not self.created or self._dh is None:
            raise EnclaveError(f"enclave {self.name!r} not created")
        return self._dh.session_keys(peer_public)

    def destroy(self) -> None:
        """Tear the enclave down; keys are erased."""
        self.created = False
        self._dh = None
        self.measurement = b""


class TrustDomain:
    """A manufacturer root that provisions per-device attestation keys."""

    def __init__(self, root_secret: bytes = b"simulated-manufacturer-root") -> None:
        self._root = root_secret

    def attestor_for(self, device_name: str) -> Attestor:
        """Device attestation key derived from the root."""
        return Attestor(derive_key(self._root, f"device:{device_name}", 16))


def mutual_attestation(
    cpu_enclave: Enclave,
    npu_enclave: Enclave,
    domain: TrustDomain,
) -> Tuple[Tuple[bytes, bytes], Tuple[bytes, bytes]]:
    """Run the authentication phase; returns each side's session keys.

    Raises :class:`AttestationError` if either report fails verification.
    Both key tuples are equal on success — asserted by the caller's tests,
    not trusted silently here.
    """
    cpu_attestor = domain.attestor_for("cpu")
    npu_attestor = domain.attestor_for("npu")
    cpu_report = cpu_attestor.report("cpu-enclave", cpu_enclave.measurement)
    npu_report = npu_attestor.report("npu-enclave", npu_enclave.measurement)
    # Each side verifies the peer's report against the expected measurement.
    npu_attestor.verify(npu_report, npu_enclave.measurement)
    cpu_attestor.verify(cpu_report, cpu_enclave.measurement)
    cpu_keys = cpu_enclave.session_keys(npu_enclave.dh_public)
    npu_keys = npu_enclave.session_keys(cpu_enclave.dh_public)
    if cpu_keys != npu_keys:
        raise AttestationError("session key derivation diverged")
    return cpu_keys, npu_keys
