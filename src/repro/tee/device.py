"""Secure devices: the CPU and NPU sides of the collaborative system.

Each device composes a tensor registry, its granularity-appropriate VN
management (TenAnalyzer on the CPU, the on-chip tensor tables on the NPU)
and a :class:`FunctionalMee` over its own simulated DRAM. Both engines run
under the *same* DH session keys after attestation, which is what makes the
direct ciphertext transfer decryptable on the far side (Sec. 4.4).

Ciphertext portability: counters and MACs bind the *source* physical
address; a transferred tensor carries its source coordinates in the
trusted-channel metadata, and the receiving device records them as the
tensor's crypto context (``pa_override``), so no re-encryption is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cpu.tenanalyzer import TenAnalyzer
from repro.errors import ConfigError, IntegrityError
from repro.mem.mee import FunctionalMee
from repro.npu.config import NpuConfig
from repro.npu.delayed import DelayedVerificationEngine
from repro.npu.mac import OnChipTensorMacTable
from repro.npu.vn import TensorVnTable
from repro.sim.stats import Stats
from repro.sim.trace import AccessKind, MemAccess
from repro.tensor.dtype import DType
from repro.tensor.registry import TensorRegistry
from repro.tensor.tensor import TensorDesc
from repro.units import CACHELINE_BYTES, KiB, MiB

LINE = CACHELINE_BYTES


@dataclass(frozen=True)
class CryptoContext:
    """Crypto coordinates of a tensor received over the direct channel."""

    src_base_pa: int
    vn: int


class CpuSecureDevice:
    """Host CPU with TenAnalyzer-backed tensor-granularity TEE."""

    def __init__(
        self,
        aes_key: bytes,
        mac_key: bytes,
        protected_bytes: int = 8 * MiB,
        meta_table_capacity: int = 512,
        name: str = "cpu",
    ) -> None:
        self.name = name
        self.stats = Stats(name)
        self.registry = TensorRegistry(base_va=0x7F00_0000_0000, guard_bytes=256 * KiB)
        self.analyzer = TenAnalyzer(
            capacity=meta_table_capacity, stats=self.stats.scope("tenanalyzer")
        )
        self.mee = FunctionalMee(
            aes_key,
            mac_key,
            name=f"{name}.mee",
            protected_bytes=protected_bytes,
            with_merkle=True,
            stats=self.stats.scope("mee"),
        )

    def allocate(self, name: str, shape: Tuple[int, ...], dtype: DType = DType.FP32) -> TensorDesc:
        return self.registry.allocate(name, shape, dtype)

    def write_tensor(self, tensor: TensorDesc, data: bytes) -> None:
        """Write a whole tensor through the analyzer + MEE."""
        if len(data) != tensor.nbytes:
            raise ConfigError(f"{tensor.name}: bad payload size {len(data)}")
        for i, vaddr in enumerate(tensor.line_addresses()):
            chunk = data[i * LINE : (i + 1) * LINE].ljust(LINE, b"\x00")
            access = MemAccess(vaddr, AccessKind.WRITE, tensor_id=tensor.tensor_id)
            outcome = self.analyzer.on_write(access)
            old_mac, new_mac = self.mee.write_line(vaddr, chunk, vn=outcome.vn)
            self.analyzer.fold_mac(vaddr, old_mac ^ new_mac)

    def read_tensor(self, tensor: TensorDesc) -> bytes:
        """Read a whole tensor through the analyzer + MEE (verifying)."""
        chunks = []
        for vaddr in tensor.line_addresses():
            access = MemAccess(vaddr, AccessKind.READ, tensor_id=tensor.tensor_id)
            outcome = self.analyzer.on_read(access)
            chunks.append(self.mee.read_line(vaddr, vn=outcome.vn))
        return b"".join(chunks)[: tensor.nbytes]

    def tensor_metadata(self, tensor: TensorDesc) -> Tuple[int, int]:
        """(VN, tensor MAC) for the trusted channel.

        Served from the Meta Table when a single entry covers the tensor;
        otherwise recomputed from the per-line stores (the slow path a
        cold/uncovered tensor takes).
        """
        fast = self.analyzer.metadata_for_range(tensor.base_va, tensor.n_lines)
        if fast is not None:
            return fast
        vn = self.analyzer.vn_store.read(tensor.base_va)
        mac = 0
        for vaddr in tensor.line_addresses():
            if self.analyzer.vn_store.read(vaddr) != vn:
                raise IntegrityError(
                    f"{tensor.name}: inconsistent per-line VNs; not transferable as one tensor"
                )
            mac ^= self.mee.stored_mac(vaddr)
        return vn, mac

    def base_pa(self, tensor: TensorDesc) -> int:
        return self.mee.pages.translate(tensor.base_va)


class NpuSecureDevice:
    """Discrete NPU with tensor-granularity VN/MAC and delayed verification."""

    def __init__(
        self,
        aes_key: bytes,
        mac_key: bytes,
        config: Optional[NpuConfig] = None,
        protected_bytes: int = 8 * MiB,
        name: str = "npu",
    ) -> None:
        self.name = name
        self.config = config if config is not None else NpuConfig()
        self.stats = Stats(name)
        self.registry = TensorRegistry(base_va=0x4200_0000_0000, guard_bytes=256 * KiB)
        self.mee = FunctionalMee(
            aes_key,
            mac_key,
            name=f"{name}.mee",
            protected_bytes=protected_bytes,
            with_merkle=False,  # VNs live on chip; no tree needed (Sec. 2.2)
            stats=self.stats.scope("mee"),
        )
        self.vn_table = TensorVnTable(self.registry, stats=self.stats.scope("vn"))
        self.mac_table = OnChipTensorMacTable(stats=self.stats.scope("mac"))
        self.engine = DelayedVerificationEngine(
            self.config,
            self.mee,
            self.vn_table,
            self.mac_table,
            stats=self.stats.scope("delayed"),
        )
        self._crypto_ctx: Dict[int, CryptoContext] = {}

    def allocate(self, name: str, shape: Tuple[int, ...], dtype: DType = DType.FP16) -> TensorDesc:
        return self.registry.allocate(name, shape, dtype)

    def write_tensor(self, tensor: TensorDesc, data: bytes) -> None:
        self._crypto_ctx.pop(tensor.tensor_id, None)  # locally rewritten
        self.engine.write_tensor(tensor, data)

    def read_tensor_delayed(self, tensor: TensorDesc) -> bytes:
        ctx = self._crypto_ctx.get(tensor.tensor_id)
        if ctx is None:
            return self.engine.read_tensor_delayed(tensor)
        return self._read_received(tensor, ctx)

    def _read_received(self, tensor: TensorDesc, ctx: CryptoContext) -> bytes:
        """Read a tensor that still carries source-PA crypto coordinates."""
        from repro.crypto.mac import TensorMacAccumulator

        accumulator = TensorMacAccumulator(expected_lines=tensor.n_lines)
        chunks = []
        for i, vaddr in enumerate(tensor.line_addresses()):
            pa_here = self.mee.pages.translate(vaddr)
            ciphertext = self.mee.dram.read_line(pa_here)
            src_pa = ctx.src_base_pa + i * LINE
            accumulator.absorb(self.mee.mac.line_mac(ciphertext, src_pa, ctx.vn))
            chunks.append(self.mee.cipher.decrypt_line(ciphertext, src_pa, ctx.vn))
        if not accumulator.matches(self.mac_table.mac_of(tensor.tensor_id)):
            raise IntegrityError(
                f"{tensor.name}: transferred tensor failed MAC verification"
            )
        self.mac_table.set_poison(tensor.tensor_id, False)
        self.stats.add("received_reads")
        return b"".join(chunks)[: tensor.nbytes]

    def admit_transfer(
        self,
        tensor: TensorDesc,
        vn: int,
        tensor_mac: int,
        src_base_pa: int,
    ) -> None:
        """Record trusted-channel metadata for a directly-received tensor."""
        self.vn_table.set_vn(tensor, vn)
        self.mac_table.set_mac(tensor.tensor_id, tensor_mac)
        self.mac_table.set_poison(tensor.tensor_id, True)  # until first verify
        self._crypto_ctx[tensor.tensor_id] = CryptoContext(src_base_pa=src_base_pa, vn=vn)

    def raw_write_line(self, vaddr: int, ciphertext: bytes) -> None:
        """Direct-channel DMA: ciphertext lands in GDDR untouched."""
        self.mee.dram.write_line(self.mee.pages.translate(vaddr), ciphertext)

    def tensor_metadata(self, tensor: TensorDesc) -> Tuple[int, int]:
        """(VN, tensor MAC) of an NPU tensor for the trusted channel."""
        return self.vn_table.vn_of(tensor), self.mac_table.mac_of(tensor.tensor_id)

    def base_pa(self, tensor: TensorDesc) -> int:
        ctx = self._crypto_ctx.get(tensor.tensor_id)
        if ctx is not None:
            return ctx.src_base_pa
        return self.mee.pages.translate(tensor.base_va)
