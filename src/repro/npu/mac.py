"""MAC granularity schemes for NPU memory integrity (Sec. 4.3 / Fig. 20).

The granularity trades storage against verification behaviour:

- fine (64 B): one MAC per line — high storage overhead (56/512 bits ≈
  10.9%) and extra fetch traffic, but verification completes per line;
- coarse (512 B .. 4 KB, MGX/GuardNN style): less storage, but a line can
  only be *consumed* after its whole granule arrived and verified →
  pipeline bubbles (Fig. 13b);
- tensor-wise (TensorTEE): one on-chip XOR MAC per tensor — storage is the
  on-chip table only, and delayed verification removes the stalls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.npu.config import NpuConfig
from repro.sim.stats import Stats
from repro.units import CACHELINE_BYTES, MAC_BITS

MAC_BYTES = MAC_BITS // 8  # 7


@dataclass(frozen=True)
class MacScheme:
    """One point of the Fig. 20 sweep."""

    name: str
    granule_bytes: int  # 0 encodes tensor-granularity
    delayed: bool = False

    def __post_init__(self) -> None:
        if self.granule_bytes < 0:
            raise ConfigError("granule must be non-negative")
        if self.granule_bytes and self.granule_bytes % CACHELINE_BYTES:
            raise ConfigError("granule must be a multiple of the line size")

    @property
    def is_tensor_wise(self) -> bool:
        return self.granule_bytes == 0

    def storage_overhead(self) -> float:
        """Off-chip MAC storage as a fraction of protected data."""
        if self.is_tensor_wise:
            return 0.0  # the per-tensor table lives on chip (Sec. 6.5)
        return MAC_BYTES / self.granule_bytes

    def traffic_overhead(self) -> float:
        """Extra DRAM traffic for MAC fetches as a fraction of data bytes."""
        if self.is_tensor_wise:
            return 0.0
        return MAC_BYTES / self.granule_bytes

    def stall_overhead(self, config: NpuConfig) -> float:
        """Pipeline-bubble fraction from granule-completion waits.

        Under *eager* verification a line decrypted early in a granule
        cannot feed the array until the granule's MAC verifies, which
        happens only after its last line arrives — the exposed wait grows
        with the granule relative to the DMA streaming window
        (Fig. 13b/Fig. 20: ~13% at 4 KB). *Delayed* verification decouples
        consumption from granule completion entirely (poison tracking
        stands in for the stall), so no bubble remains at any granularity.
        """
        if self.delayed:
            return 0.0
        granule = self.granule_bytes if self.granule_bytes else config.scratchpad_bytes
        # At worst the pipeline fully serializes fetch+verify against compute
        # (Fig. 13b: non-delayed whole-tensor verification doubles the time).
        return min(1.0, granule / config.stall_window_bytes)

    def performance_overhead(self, config: NpuConfig) -> float:
        """Total kernel-time overhead fraction of this scheme.

        MAC fetches inflate the DMA streams that feed the array (tile
        loading gates the systolic pipeline), so traffic overhead applies
        in full; granule-completion stalls add on top under eager
        verification, while a delayed policy trades them for the exposed
        verification-barrier tail (Sec. 6.3: ~2.5% for TensorTEE's
        tensor-wise scheme, whose MAC table lives on chip and so pays no
        traffic either).
        """
        if self.delayed:
            return self.traffic_overhead() + config.barrier_tail_fraction
        return self.traffic_overhead() + self.stall_overhead(config)


def fig20_schemes() -> list[MacScheme]:
    """The granularities of Fig. 20 plus TensorTEE's tensor-wise scheme."""
    points = [64, 256, 512, 1024, 2048, 4096]
    schemes = [MacScheme(f"{g}B", g) for g in points]
    schemes.append(MacScheme("tensor(ours)", 0, delayed=True))
    return schemes


class OnChipTensorMacTable:
    """The on-chip per-tensor MAC/poison table (Sec. 4.3, Sec. 6.5)."""

    def __init__(self, capacity: int = 512, stats: Optional[Stats] = None) -> None:
        if capacity <= 0:
            raise ConfigError("table capacity must be positive")
        self.capacity = capacity
        self.stats = stats if stats is not None else Stats("tensor_mac")
        self._macs: Dict[int, int] = {}
        self._poison: Dict[int, bool] = {}

    def set_mac(self, tensor_id: int, mac: int) -> None:
        if len(self._macs) >= self.capacity and tensor_id not in self._macs:
            raise ConfigError("tensor MAC table overflow (more than capacity tensors)")
        self._macs[tensor_id] = mac

    def mac_of(self, tensor_id: int) -> int:
        return self._macs.get(tensor_id, 0)

    def fold(self, tensor_id: int, delta: int) -> None:
        """XOR a line-MAC delta into the tensor MAC (incremental update)."""
        self._macs[tensor_id] = self._macs.get(tensor_id, 0) ^ delta

    # -- poison bits (Sec. 4.3) ----------------------------------------------

    def set_poison(self, tensor_id: int, poisoned: bool = True) -> None:
        self._poison[tensor_id] = poisoned
        if poisoned:
            self.stats.add("poisons_set")

    def is_poisoned(self, tensor_id: int) -> bool:
        return self._poison.get(tensor_id, False)

    @property
    def poisoned_count(self) -> int:
        return sum(1 for value in self._poison.values() if value)
