"""NPU configuration (Table 1) and its calibration constants."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.mem.dram import DramTimingModel, gddr5_npu
from repro.units import KiB, MiB


@dataclass(frozen=True)
class NpuConfig:
    """TPUv3-like NPU from Table 1.

    Peak: 512x512 PEs x 2 FLOP @ 1 GHz = 524 TFLOPS; ``compute_efficiency``
    derates sustained GEMM throughput to ~A100 level (the paper aligns its
    simulator against an A100).
    """

    freq_hz: float = 1.0e9
    pe_rows: int = 512
    pe_cols: int = 512
    scratchpad_bytes: int = 32 * MiB
    dram: DramTimingModel = field(default_factory=gddr5_npu)
    aes_latency_cycles: int = 40
    mac_latency_cycles: int = 40

    # -- calibration ---------------------------------------------------------
    #: Sustained fraction of peak MACs for large GEMMs (~A100-aligned).
    compute_efficiency: float = 0.75
    #: Streaming window per DMA stream; granule-verification bubbles are
    #: proportional to granule_size / stall_window (Fig. 20 shape).
    stall_window_bytes: int = 32 * KiB
    #: Exposed verification-barrier tail per kernel, as a fraction of kernel
    #: time (Sec. 6.3 reports ~2.5% for delayed tensor-wise verification).
    barrier_tail_fraction: float = 0.025
    #: Cap on concurrently-unverified tensors (Sec. 4.3 poison counter).
    max_unverified_tensors: int = 64

    def __post_init__(self) -> None:
        if not 0 < self.compute_efficiency <= 1:
            raise ConfigError("compute efficiency must be in (0, 1]")
        if self.stall_window_bytes <= 0:
            raise ConfigError("stall window must be positive")

    @property
    def peak_flops(self) -> float:
        return 2.0 * self.pe_rows * self.pe_cols * self.freq_hz

    @property
    def sustained_flops(self) -> float:
        return self.peak_flops * self.compute_efficiency
