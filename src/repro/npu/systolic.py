"""Output-stationary systolic-array timing (TPUv3-like, Sec. 5.1).

GEMM kernels are tiled over the PE array; per output tile the array streams
K partial sums, plus fill/drain overhead. Kernel time is the roofline
maximum of compute time and GDDR streaming time (weights + activations),
with automatic tiling handled implicitly by the scratchpad double-buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.npu.config import NpuConfig


@dataclass(frozen=True)
class GemmShape:
    """C[m, n] += A[m, k] @ B[k, n]."""

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) <= 0:
            raise ConfigError(f"GEMM dims must be positive: {self}")

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.n * self.k

    def io_bytes(self, elem_bytes: int = 2) -> float:
        """Operands read and output written once (consumers charge their
        own re-reads; scratchpad tiling avoids intra-kernel re-fetch)."""
        return elem_bytes * (self.m * self.k + self.k * self.n + self.m * self.n)


@dataclass(frozen=True)
class KernelTime:
    """Timing decomposition of one kernel."""

    compute_s: float
    io_s: float

    @property
    def total_s(self) -> float:
        return max(self.compute_s, self.io_s)

    @property
    def io_bound(self) -> bool:
        return self.io_s > self.compute_s


def gemm_time(config: NpuConfig, shape: GemmShape, elem_bytes: int = 2) -> KernelTime:
    """Roofline time of one GEMM on the systolic array."""
    rows, cols = config.pe_rows, config.pe_cols
    row_tiles = -(-shape.m // rows)
    col_tiles = -(-shape.n // cols)
    # Output-stationary with back-to-back tile pipelining: successive output
    # tiles overlap fill with the previous drain, leaving a modest per-tile
    # swap overhead plus one array fill+drain per kernel.
    tile_swap_cycles = 32
    cycles = row_tiles * col_tiles * (shape.k + tile_swap_cycles) + rows + cols
    compute_s = cycles / (config.freq_hz * config.compute_efficiency)
    io_s = shape.io_bytes(elem_bytes) / config.dram.effective_stream_bw
    return KernelTime(compute_s=compute_s, io_s=io_s)


def elementwise_time(config: NpuConfig, n_elements: int, elem_bytes: int = 2) -> KernelTime:
    """Memory-bound elementwise kernel (activations, residuals, norms)."""
    if n_elements < 0:
        raise ConfigError("element count must be non-negative")
    io_bytes = 3.0 * n_elements * elem_bytes  # two reads + one write
    io_s = io_bytes / config.dram.effective_stream_bw
    compute_s = n_elements / (config.pe_rows * config.pe_cols * config.freq_hz)
    return KernelTime(compute_s=compute_s, io_s=io_s)
