"""Output-stationary systolic-array timing (TPUv3-like, Sec. 5.1).

GEMM kernels are tiled over the PE array; per output tile the array streams
K partial sums, plus fill/drain overhead. Kernel time is the roofline
maximum of compute time and GDDR streaming time (weights + activations),
with automatic tiling handled implicitly by the scratchpad double-buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro import vec
from repro.errors import ConfigError
from repro.npu.config import NpuConfig

#: Per-output-tile swap overhead of the back-to-back tile pipeline.
TILE_SWAP_CYCLES = 32


@dataclass(frozen=True)
class GemmShape:
    """C[m, n] += A[m, k] @ B[k, n]."""

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) <= 0:
            raise ConfigError(f"GEMM dims must be positive: {self}")

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.n * self.k

    def io_bytes(self, elem_bytes: int = 2) -> float:
        """Operands read and output written once (consumers charge their
        own re-reads; scratchpad tiling avoids intra-kernel re-fetch)."""
        return elem_bytes * (self.m * self.k + self.k * self.n + self.m * self.n)


@dataclass(frozen=True)
class KernelTime:
    """Timing decomposition of one kernel."""

    compute_s: float
    io_s: float

    @property
    def total_s(self) -> float:
        return max(self.compute_s, self.io_s)

    @property
    def io_bound(self) -> bool:
        return self.io_s > self.compute_s


def gemm_time(config: NpuConfig, shape: GemmShape, elem_bytes: int = 2) -> KernelTime:
    """Roofline time of one GEMM on the systolic array."""
    rows, cols = config.pe_rows, config.pe_cols
    row_tiles = -(-shape.m // rows)
    col_tiles = -(-shape.n // cols)
    # Output-stationary with back-to-back tile pipelining: successive output
    # tiles overlap fill with the previous drain, leaving a modest per-tile
    # swap overhead plus one array fill+drain per kernel.
    cycles = row_tiles * col_tiles * (shape.k + TILE_SWAP_CYCLES) + rows + cols
    compute_s = cycles / (config.freq_hz * config.compute_efficiency)
    io_s = shape.io_bytes(elem_bytes) / config.dram.effective_stream_bw
    return KernelTime(compute_s=compute_s, io_s=io_s)


def gemm_times(
    config: NpuConfig, shapes: Sequence[GemmShape], elem_bytes: int = 2
) -> List[KernelTime]:
    """Roofline times of many GEMMs in one batched sweep.

    Bit-identical to a :func:`gemm_time` loop (same integer cycle counts,
    same float64 divisions); the batched path evaluates the whole shape
    sweep as array arithmetic, which is what the granularity/ablation
    sweeps and the kernel scheduler iterate over.
    """
    if not vec.enabled():
        return [gemm_time(config, shape, elem_bytes) for shape in shapes]
    if not shapes:
        return []
    np = vec.np
    m = np.array([s.m for s in shapes], dtype=np.int64)
    n = np.array([s.n for s in shapes], dtype=np.int64)
    k = np.array([s.k for s in shapes], dtype=np.int64)
    rows, cols = config.pe_rows, config.pe_cols
    row_tiles = (m + rows - 1) // rows
    col_tiles = (n + cols - 1) // cols
    cycles = row_tiles * col_tiles * (k + TILE_SWAP_CYCLES) + rows + cols
    compute_s = cycles / (config.freq_hz * config.compute_efficiency)
    io_s = (elem_bytes * (m * k + k * n + m * n)) / config.dram.effective_stream_bw
    return [
        KernelTime(compute_s=float(c), io_s=float(i))
        for c, i in zip(compute_s, io_s)
    ]


def elementwise_time(config: NpuConfig, n_elements: int, elem_bytes: int = 2) -> KernelTime:
    """Memory-bound elementwise kernel (activations, residuals, norms)."""
    if n_elements < 0:
        raise ConfigError("element count must be non-negative")
    io_bytes = 3.0 * n_elements * elem_bytes  # two reads + one write
    io_s = io_bytes / config.dram.effective_stream_bw
    compute_s = n_elements / (config.pe_rows * config.pe_cols * config.freq_hz)
    return KernelTime(compute_s=compute_s, io_s=io_s)
