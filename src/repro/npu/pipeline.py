"""Event-driven decrypt/verify/compute pipeline (Fig. 13).

A first-principles simulation of the three pipelines the paper draws:

(a) per-line MAC: each line verifies as it lands — no granule waits, but
    every line's MAC fetch costs extra DRAM time;
(b) granule MAC (MGX/GuardNN style): a line may only feed the array after
    its whole granule arrived and its MAC verified — later verification =
    pipeline bubbles that grow with the granule;
(c) tensor MAC with delayed verification (TensorTEE): compute consumes
    lines immediately; verification runs in the background and only the
    end-of-tensor barrier is exposed.

Scope note: this simulation models an *elastic* consumer (compute grabs a
line whenever it is ready). Under elasticity, later verification mostly
costs a tail, and the 64B scheme's extra MAC traffic dominates — which the
simulation reproduces quantitatively. A systolic array is not elastic: a
line missing its scheduled slot forces a pipeline resync, which is why the
closed-form :meth:`repro.npu.mac.MacScheme.stall_overhead` charges bubbles
proportional to granule size (calibrated to the paper's 13% @4KB). The
test suite checks this simulation against the closed-form model on the
claims they share (traffic cost of fine granularity; delayed verification
strictly dominating granule schemes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import vec
from repro.errors import ConfigError
from repro.npu.config import NpuConfig
from repro.sim.engine import EventEngine
from repro.units import CACHELINE_BYTES, MAC_BITS

LINE = CACHELINE_BYTES


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of streaming one tensor through a verification pipeline."""

    scheme: str
    total_s: float
    ideal_s: float  # no protection at all
    stall_s: float  # time compute spent waiting on verification

    @property
    def overhead(self) -> float:
        return self.total_s / self.ideal_s - 1.0


def _line_times(config: NpuConfig, tensor_bytes: int, extra_bytes_per_line: float):
    """Arrival time of each line given the DMA stream bandwidth."""
    n_lines = tensor_bytes // LINE
    if n_lines <= 0:
        raise ConfigError("tensor must hold at least one line")
    bw = config.dram.effective_stream_bw
    per_line = (LINE + extra_bytes_per_line) / bw
    return n_lines, per_line


def simulate_granule_pipeline(
    config: NpuConfig,
    tensor_bytes: int,
    granule_bytes: int,
    compute_per_line_s: float,
) -> PipelineResult:
    """Fig. 13a/b: verification gates compute at ``granule_bytes``.

    ``granule_bytes == LINE`` is the per-line pipeline (a); larger granules
    produce the later-verification stalls of (b).
    """
    if granule_bytes % LINE:
        raise ConfigError("granule must be a multiple of the line size")
    mac_bytes_per_line = (MAC_BITS // 8) * LINE / granule_bytes
    n_lines, per_line = _line_times(config, tensor_bytes, mac_bytes_per_line)
    lines_per_granule = granule_bytes // LINE
    hash_lat = config.mac_latency_cycles / config.freq_hz
    ideal = n_lines * max(LINE / config.dram.effective_stream_bw, compute_per_line_s)

    if vec.enabled():
        # Batched replay: the per-line arrival and granule-verification
        # times are pure functions of the line index, so they come out of
        # one array expression; only the compute_free/stall recurrence
        # stays serial. Same floats, same order — results are
        # bit-identical to the event-driven scalar reference below.
        np = vec.np
        index = np.arange(n_lines, dtype=np.int64)
        last_line = np.minimum(
            (index // lines_per_granule + 1) * lines_per_granule - 1, n_lines - 1
        )
        verified_at = (last_line + 1) * per_line + hash_lat
        arrivals = (index + 1) * per_line
        readies = np.maximum(arrivals, verified_at)
        compute_free = 0.0
        stall = 0.0
        for arrival, ready in zip(arrivals.tolist(), readies.tolist()):
            wait = ready - max(arrival, compute_free)
            if wait > 0.0:
                stall += wait
            compute_free = max(ready, compute_free) + compute_per_line_s
        return PipelineResult(
            scheme=f"granule-{granule_bytes}B",
            total_s=compute_free,
            ideal_s=ideal,
            stall_s=stall,
        )

    engine = EventEngine()
    state = {"compute_free": 0.0, "stall": 0.0, "done": 0.0}

    def consume(line_index: int) -> None:
        granule_index = line_index // lines_per_granule
        last_line_of_granule = min(
            (granule_index + 1) * lines_per_granule - 1, n_lines - 1
        )
        verified_at = (last_line_of_granule + 1) * per_line + hash_lat
        arrival = (line_index + 1) * per_line
        ready = max(arrival, verified_at)
        start = max(ready, state["compute_free"])
        state["stall"] += max(0.0, ready - max(arrival, state["compute_free"]))
        state["compute_free"] = start + compute_per_line_s
        state["done"] = state["compute_free"]

    engine.at_many([(i + 1) * per_line for i in range(n_lines)], consume)
    engine.run()

    return PipelineResult(
        scheme=f"granule-{granule_bytes}B",
        total_s=state["done"],
        ideal_s=ideal,
        stall_s=state["stall"],
    )


def simulate_delayed_pipeline(
    config: NpuConfig,
    tensor_bytes: int,
    compute_per_line_s: float,
) -> PipelineResult:
    """Fig. 13c: compute never waits; only the end barrier is exposed."""
    n_lines, per_line = _line_times(config, tensor_bytes, 0.0)
    hash_lat = config.mac_latency_cycles / config.freq_hz
    compute_free = 0.0
    if vec.enabled():
        arrivals = (vec.np.arange(1, n_lines + 1, dtype=vec.np.int64) * per_line).tolist()
        for arrival in arrivals:
            compute_free = max(arrival, compute_free) + compute_per_line_s
    else:
        for i in range(n_lines):
            arrival = (i + 1) * per_line
            compute_free = max(arrival, compute_free) + compute_per_line_s
    # Barrier: the XOR accumulator finishes one hash latency after the last
    # line; the comparison itself is a few cycles.
    barrier_done = n_lines * per_line + hash_lat
    total = max(compute_free, barrier_done)
    ideal = n_lines * max(LINE / config.dram.effective_stream_bw, compute_per_line_s)
    return PipelineResult(
        scheme="tensor-delayed",
        total_s=total,
        ideal_s=ideal,
        stall_s=max(0.0, barrier_done - compute_free),
    )


def compare_pipelines(
    config: NpuConfig | None = None,
    tensor_bytes: int = 1 << 20,
    granules: tuple[int, ...] = (64, 512, 4096),
) -> list[PipelineResult]:
    """The Fig. 13 comparison for an IO-bound streaming kernel."""
    config = config if config is not None else NpuConfig()
    # IO-bound kernel: compute consumes a line slightly faster than the DMA
    # delivers it, so any verification wait is immediately exposed.
    compute_per_line = 0.9 * LINE / config.dram.effective_stream_bw
    results = [
        simulate_granule_pipeline(config, tensor_bytes, g, compute_per_line)
        for g in granules
    ]
    results.append(simulate_delayed_pipeline(config, tensor_bytes, compute_per_line))
    return results
