"""Delayed tensor-MAC verification with poison tracing (Sec. 4.3).

The functional engine behind Fig. 13c / Fig. 14:

- kernel reads stream lines *without* per-line MAC stalls; their MACs are
  XOR-accumulated per tensor in the background;
- tensors whose accumulation hasn't been checked yet are **poisoned**;
  kernels propagate poison from inputs to outputs;
- when a tensor's accumulator completes, it is compared against the on-chip
  tensor MAC: match clears the poison, mismatch records a failed tensor —
  any data derived from it stays poisoned forever;
- the **verification barrier** blocks communication until the involved
  tensors' poison bits clear, raising on verification failure, so tampered
  data can never leave the NPU enclave;
- **code fetches** never take the delayed path (non-delayed verification,
  preventing delayed-verification code-tampering attacks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.crypto.mac import TensorMacAccumulator, xor_macs
from repro.errors import (
    CodeIntegrityError,
    ConfigError,
    IntegrityError,
    PoisonedTensorError,
)
from repro.mem.mee import FunctionalMee
from repro.npu.config import NpuConfig
from repro.npu.mac import OnChipTensorMacTable
from repro.npu.vn import TensorVnTable
from repro.sim.stats import Stats
from repro.tensor.tensor import TensorDesc
from repro.units import CACHELINE_BYTES

LINE = CACHELINE_BYTES


@dataclass
class PendingVerification:
    """A tensor read in-flight under delayed verification."""

    tensor_id: int
    accumulator: TensorMacAccumulator
    vn: int


class DelayedVerificationEngine:
    """Tensor-granularity delayed integrity verification for NPU data."""

    def __init__(
        self,
        config: NpuConfig,
        mee: FunctionalMee,
        vn_table: TensorVnTable,
        mac_table: Optional[OnChipTensorMacTable] = None,
        stats: Optional[Stats] = None,
    ) -> None:
        self.config = config
        self.mee = mee
        self.vn_table = vn_table
        self.mac_table = mac_table if mac_table is not None else OnChipTensorMacTable()
        self.stats = stats if stats is not None else Stats("delayed_verify")
        self._pending: Dict[int, PendingVerification] = {}
        self._failed: Set[int] = set()
        #: Poison lineage: output tensor id -> unverified input tensor ids.
        self._deps: Dict[int, Set[int]] = {}

    # -- write path -------------------------------------------------------------

    def write_tensor(self, tensor: TensorDesc, data: bytes) -> None:
        """Kernel output: encrypt lines under a fresh tensor VN and build
        the on-chip tensor MAC incrementally."""
        if len(data) != tensor.nbytes:
            raise ConfigError(
                f"{tensor.name}: payload is {len(data)} bytes, tensor needs {tensor.nbytes}"
            )
        vn = self.vn_table.begin_write(tensor)
        vaddrs = list(tensor.line_addresses())
        padded = data.ljust(len(vaddrs) * LINE, b"\x00")
        _, new_macs = self.mee.write_lines(vaddrs, padded, vn=vn)
        self.mac_table.set_mac(tensor.tensor_id, xor_macs(new_macs))
        self.stats.add("tensor_writes")

    # -- read path (delayed) --------------------------------------------------

    def read_tensor_delayed(self, tensor: TensorDesc) -> bytes:
        """Kernel input: decrypt immediately, verify in the background.

        The returned plaintext is usable at once (no stalls); the tensor is
        poisoned until :meth:`poll_verification` (or the barrier) confirms
        the accumulated MAC. Enforces the unverified-tensor cap.
        """
        live_pending = len(self._pending)
        if live_pending >= self.config.max_unverified_tensors:
            # The Sec.-4.3 counter: force verification before continuing so
            # a corrupted run cannot compute unboundedly on garbage.
            self.poll_verification()
        vn = self.vn_table.vn_of(tensor)
        accumulator = TensorMacAccumulator(expected_lines=tensor.n_lines)
        vaddrs = list(tensor.line_addresses())
        plaintext = self.mee.read_lines(vaddrs, vn=vn, verify=False)
        accumulator.absorb_many(self.mee.line_macs_of(vaddrs, vn))
        self._pending[tensor.tensor_id] = PendingVerification(
            tensor_id=tensor.tensor_id, accumulator=accumulator, vn=vn
        )
        self.mac_table.set_poison(tensor.tensor_id, True)
        self.stats.add("delayed_reads")
        return plaintext[: tensor.nbytes]

    def read_code_line(self, vaddr: int) -> bytes:
        """Instruction fetch: strict, non-delayed verification (Sec. 4.3).

        Any integrity failure on the code path is fatal immediately —
        delayed-verification attacks via tampered code are thereby
        impossible.
        """
        vn = self.vn_table.vn_for_line(vaddr)
        try:
            return self.mee.read_line(vaddr, vn=vn, verify=True)
        except IntegrityError as exc:
            self.stats.add("code_integrity_failures")
            raise CodeIntegrityError(str(exc)) from exc

    # -- verification ------------------------------------------------------------

    def poll_verification(self) -> List[int]:
        """Finish all pending verifications; returns failed tensor ids.

        Failed tensors stay poisoned permanently; clean tensors clear
        (Fig. 14c: poison cleared after verification finishes).
        """
        failed: List[int] = []
        verified: List[int] = []
        for tensor_id, pending in list(self._pending.items()):
            reference = self.mac_table.mac_of(tensor_id)
            if pending.accumulator.matches(reference):
                self.mac_table.set_poison(tensor_id, False)
                verified.append(tensor_id)
                self.stats.add("verified_ok")
            else:
                self._failed.add(tensor_id)
                failed.append(tensor_id)
                self.stats.add("verified_failed")
            del self._pending[tensor_id]
        # Resolve poison lineage: outputs whose unverified ancestors all
        # verified cleanly lose their poison; descendants of failed tensors
        # keep it permanently.
        for out_id, dep_ids in list(self._deps.items()):
            dep_ids.difference_update(verified)
            if dep_ids & self._failed:
                self._failed.add(out_id)
                self.mac_table.set_poison(out_id, True)
                del self._deps[out_id]
            elif not dep_ids:
                if out_id not in self._failed:
                    self.mac_table.set_poison(out_id, False)
                del self._deps[out_id]
        return failed

    # -- poison propagation (Fig. 14) ---------------------------------------------

    def propagate_poison(
        self, inputs: Sequence[TensorDesc], outputs: Sequence[TensorDesc]
    ) -> bool:
        """Mark kernel outputs poisoned when any input is unverified/failed."""
        unverified = {
            t.tensor_id
            for t in inputs
            if self.mac_table.is_poisoned(t.tensor_id) or t.tensor_id in self._failed
        }
        for out in outputs:
            if unverified:
                self.mac_table.set_poison(out.tensor_id, True)
                pending_inputs = {
                    t for t in unverified if t in self._pending or t in self._deps
                }
                if unverified & self._failed:
                    self._failed.add(out.tensor_id)
                else:
                    self._deps.setdefault(out.tensor_id, set()).update(pending_inputs)
                self.stats.add("poison_propagations")
        return bool(unverified)

    def verification_barrier(self, tensors: Sequence[TensorDesc]) -> None:
        """``#pragma verification_barrier`` (Fig. 14a).

        Completes all pending verifications, then requires every involved
        tensor to be poison-free. Raises :class:`IntegrityError` when a
        verification failed, :class:`PoisonedTensorError` when a tensor's
        poison derives from a failed/unverifiable ancestor.
        """
        failed = self.poll_verification()
        for tensor in tensors:
            if tensor.tensor_id in self._failed or tensor.tensor_id in failed:
                raise IntegrityError(
                    f"tensor {tensor.name} failed delayed MAC verification"
                )
            if self.mac_table.is_poisoned(tensor.tensor_id):
                raise PoisonedTensorError(
                    f"tensor {tensor.name} is poisoned and cannot leave the enclave"
                )
        self.stats.add("barriers_passed")

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def failed_tensor_ids(self) -> Set[int]:
        return set(self._failed)
