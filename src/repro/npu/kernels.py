"""Transformer forward+backward kernel schedule for the NPU.

Lowers one training iteration of a Table-2 model to a GEMM/elementwise
kernel list and sums roofline times. Backward costs roughly twice forward
(two GEMMs per forward GEMM); attention score/context GEMMs are batched per
head. This is the "NPU fwd & bwd" stage of Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.npu.config import NpuConfig
from repro.npu.systolic import (
    GemmShape,
    KernelTime,
    elementwise_time,
    gemm_time,
    gemm_times,
)
from repro.workloads.models import ModelConfig


@dataclass(frozen=True)
class KernelRecord:
    """One scheduled kernel and its timing."""

    name: str
    time: KernelTime
    io_bytes: float


def layer_gemms(model: ModelConfig, tokens: int) -> List[Tuple[str, GemmShape]]:
    """Projection/MLP GEMMs of one transformer layer's forward pass.

    The attention score/softmax/context chain is fused separately (see
    :func:`fused_attention_time`): per (batch, head) the s x s score tile
    fits in the scratchpad, so it never touches GDDR — the paper's
    "automatic tiling and inter-layer optimization".
    """
    h, ffn = model.hidden, model.ffn
    gemms: List[Tuple[str, GemmShape]] = [
        ("attn.qkv", GemmShape(tokens, 3 * h, h)),
        ("attn.out", GemmShape(tokens, h, h)),
    ]
    if model.gated_mlp:
        gemms.append(("mlp.gate", GemmShape(tokens, ffn, h)))
    gemms.append(("mlp.up", GemmShape(tokens, ffn, h)))
    gemms.append(("mlp.down", GemmShape(tokens, h, ffn)))
    return gemms


def fused_attention_time(config: NpuConfig, model: ModelConfig) -> KernelTime:
    """Fused scores+softmax+context: reads Q/K/V, writes the context out.

    Compute covers both s x s GEMM chains per (batch, head); GDDR traffic is
    only the 4 token x hidden activations (the s x s intermediates stay on
    chip).
    """
    seq = model.seq_len
    head_dim = model.hidden // model.n_heads
    batch_heads = model.batch_size * model.n_heads
    flops = 2.0 * 2.0 * batch_heads * seq * seq * head_dim
    compute_s = flops / config.sustained_flops
    io_bytes = 4.0 * model.tokens_per_batch * model.hidden * 2
    io_s = io_bytes / config.dram.effective_stream_bw
    return KernelTime(compute_s=compute_s, io_s=io_s)


def iteration_kernels(config: NpuConfig, model: ModelConfig) -> List[KernelRecord]:
    """All kernels of one fwd+bwd iteration (backward = 2x each fwd GEMM)."""
    tokens = model.tokens_per_batch
    records: List[KernelRecord] = []
    per_layer = layer_gemms(model, tokens)
    # Every layer schedules the same GEMM shapes (and backward reuses the
    # forward roofline), so one batched sweep times them all.
    per_layer_times = gemm_times(config, [shape for _, shape in per_layer])
    attn = fused_attention_time(config, model)
    attn_io = 4.0 * tokens * model.hidden * 2
    for layer in range(model.n_layers):
        for (name, shape), gemm in zip(per_layer, per_layer_times):
            records.append(KernelRecord(f"l{layer}.{name}.fwd", gemm, shape.io_bytes()))
            for direction in ("bwd_data", "bwd_weight"):
                records.append(
                    KernelRecord(f"l{layer}.{name}.{direction}", gemm, shape.io_bytes())
                )
        for direction in ("fwd", "bwd"):
            scale = 1.0 if direction == "fwd" else 2.0
            records.append(
                KernelRecord(
                    f"l{layer}.attn.fused.{direction}",
                    KernelTime(attn.compute_s * scale, attn.io_s * scale),
                    attn_io * scale,
                )
            )
        # ~2 fused activation maps per layer (norms + residuals).
        act_elems = tokens * model.hidden * 2
        act = elementwise_time(config, act_elems)
        records.append(
            KernelRecord(f"l{layer}.elementwise", act, 3.0 * act_elems * 2)
        )
    # Embedding/unembedding GEMMs.
    emb = GemmShape(tokens, model.vocab, model.hidden)
    emb_time = gemm_time(config, emb)
    records.append(KernelRecord("unembed.fwd", emb_time, emb.io_bytes()))
    records.append(KernelRecord("unembed.bwd", emb_time, emb.io_bytes()))
    return records


def iteration_time_s(config: NpuConfig, model: ModelConfig) -> float:
    """Non-secure NPU time of one fwd+bwd iteration."""
    return sum(record.time.total_s for record in iteration_kernels(config, model))


def iteration_io_bytes(config: NpuConfig, model: ModelConfig) -> float:
    """Total GDDR traffic of one iteration (drives MAC-overhead scaling)."""
    return sum(record.io_bytes for record in iteration_kernels(config, model))
