"""On-chip tensor-granularity VN management (MGX-like, Sec. 2.3).

The NPU generates VNs from on-chip execution state: one VN per tensor,
bumped when a kernel (re)writes the tensor. No off-chip VN storage and no
Merkle tree are needed because the table never leaves the chip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.sim.stats import Stats
from repro.tensor.registry import TensorRegistry
from repro.tensor.tensor import TensorDesc


@dataclass
class TensorVnRecord:
    """On-chip state for one tensor."""

    tensor_id: int
    vn: int = 0


class TensorVnTable:
    """Per-tensor VN table keyed by the device's tensor registry."""

    def __init__(self, registry: TensorRegistry, stats: Optional[Stats] = None) -> None:
        self.registry = registry
        self.stats = stats if stats is not None else Stats("tensor_vn")
        self._records: Dict[int, TensorVnRecord] = {}

    def _record(self, tensor: TensorDesc) -> TensorVnRecord:
        record = self._records.get(tensor.tensor_id)
        if record is None:
            record = TensorVnRecord(tensor_id=tensor.tensor_id)
            self._records[tensor.tensor_id] = record
        return record

    def resolve(self, vaddr: int) -> TensorDesc:
        """Tensor owning an address; NPU memory is fully tensor-mapped."""
        tensor = self.registry.find(vaddr)
        if tensor is None:
            raise ConfigError(f"address {vaddr:#x} is not tensor-mapped")
        return tensor

    def vn_of(self, tensor: TensorDesc) -> int:
        """Current VN of a tensor."""
        return self._record(tensor).vn

    def vn_for_line(self, vaddr: int) -> int:
        """Current VN of the tensor containing ``vaddr``."""
        return self.vn_of(self.resolve(vaddr))

    def begin_write(self, tensor: TensorDesc) -> int:
        """Start rewriting a tensor: bump and return the new VN.

        Kernel outputs are whole-tensor writes in the MGX model; the VN is
        bumped once per output tensor per kernel.
        """
        record = self._record(tensor)
        record.vn += 1
        self.stats.add("vn_bumps")
        return record.vn

    def set_vn(self, tensor: TensorDesc, vn: int) -> None:
        """Install a VN received over the trusted channel (Sec. 4.4.2)."""
        if vn < 0:
            raise ConfigError("VN must be non-negative")
        self._record(tensor).vn = vn

    @property
    def n_tracked(self) -> int:
        return len(self._records)
