"""NPU-side models: systolic timing, tensor-granularity VN/MAC, delayed
verification with poison tracing and the verification barrier."""

from repro.npu.config import NpuConfig
from repro.npu.vn import TensorVnTable
from repro.npu.delayed import DelayedVerificationEngine

__all__ = ["NpuConfig", "TensorVnTable", "DelayedVerificationEngine"]
