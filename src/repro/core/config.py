"""System-level configuration: the three evaluated setups (Sec. 5.2)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.comm.scheduler import CommConfig
from repro.cpu.config import CpuConfig
from repro.npu.config import NpuConfig


class SystemMode(enum.Enum):
    """The three configurations compared throughout the evaluation."""

    NON_SECURE = "non-secure"
    SGX_MGX = "sgx+mgx"  # baseline: SGX-like CPU TEE + MGX-like NPU TEE
    TENSORTEE = "tensortee"


@dataclass(frozen=True)
class SystemConfig:
    """Whole-system configuration (Table 1 + protocol choices)."""

    mode: SystemMode
    cpu: CpuConfig = field(default_factory=CpuConfig)
    npu: NpuConfig = field(default_factory=NpuConfig)
    comm: CommConfig = field(default_factory=CommConfig)
    cpu_threads: int = 8
    #: MGX-style MAC granularity used by the baseline NPU TEE (bytes).
    baseline_mac_granule: int = 512

    @property
    def label(self) -> str:
        return self.mode.value


def non_secure_system() -> SystemConfig:
    return SystemConfig(mode=SystemMode.NON_SECURE)


def baseline_system() -> SystemConfig:
    return SystemConfig(mode=SystemMode.SGX_MGX)


def tensortee_system() -> SystemConfig:
    return SystemConfig(mode=SystemMode.TENSORTEE)
