"""Result records for end-to-end runs (Figs. 5, 16, 17)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class StageBreakdown:
    """Per-iteration latency decomposition of one (model, mode) pair.

    ``comm_w`` / ``comm_g`` are *exposed* (non-overlapped) transfer times;
    their busy times are recorded separately for utilization reporting.
    """

    model_name: str
    mode: str
    npu_s: float
    cpu_s: float
    comm_w_s: float
    comm_g_s: float
    comm_w_busy_s: float = 0.0
    comm_g_busy_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.npu_s + self.cpu_s + self.comm_w_s + self.comm_g_s

    def fractions(self) -> Dict[str, float]:
        """Stage shares of the total (the Fig. 5 / Fig. 17 stacked bars)."""
        total = max(self.total_s, 1e-30)
        return {
            "NPU": self.npu_s / total,
            "CPU": self.cpu_s / total,
            "Comm W": self.comm_w_s / total,
            "Comm G": self.comm_g_s / total,
        }

    def speedup_over(self, other: "StageBreakdown") -> float:
        """How much faster *self* is than ``other``."""
        return other.total_s / max(self.total_s, 1e-30)

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe record for manifests and machine-readable reports
        (implements the :class:`repro.eval.metrics.Metrics` protocol)."""
        return {
            "model": self.model_name,
            "mode": self.mode,
            "npu_s": self.npu_s,
            "cpu_s": self.cpu_s,
            "comm_w_s": self.comm_w_s,
            "comm_g_s": self.comm_g_s,
            "comm_w_busy_s": self.comm_w_busy_s,
            "comm_g_busy_s": self.comm_g_busy_s,
            "total_s": self.total_s,
            "fractions": self.fractions(),
        }
