"""Hardware overhead estimate (Sec. 6.5).

Storage budget of TensorTEE's on-chip structures:

- Meta Table: 512 entries x (address range 64+92 bits, stride 10, VN 56,
  MAC 56, flags 2);
- Tensor Filter: 10 entries x (4 addresses x 64 bits + VN 56 + MAC 56);
- on-chip bitmap cache: 6 KB (sized against the L3);
- poison bits: 512.

Total ~24 KB; area from a CACTI-7-style SRAM density constant at 7 nm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: CACTI-7-derived SRAM area density at 7 nm (mm^2 per KiB), fit so the
#: paper's 24 KB budget lands at 0.0072 mm^2.
MM2_PER_KIB_7NM = 0.0072 / 24.0


@dataclass(frozen=True)
class MetaTableBudget:
    entries: int = 512
    addr_bits: int = 64
    dims_bits: int = 92
    stride_bits: int = 10
    vn_bits: int = 56
    mac_bits: int = 56
    flag_bits: int = 2

    @property
    def entry_bits(self) -> int:
        return (
            self.addr_bits
            + self.dims_bits
            + self.stride_bits
            + self.vn_bits
            + self.mac_bits
            + self.flag_bits
        )

    @property
    def total_bytes(self) -> int:
        return self.entries * self.entry_bits // 8


@dataclass(frozen=True)
class TensorFilterBudget:
    entries: int = 10
    addresses_per_entry: int = 4
    addr_bits: int = 64
    vn_bits: int = 56
    mac_bits: int = 56

    @property
    def entry_bits(self) -> int:
        return self.addresses_per_entry * self.addr_bits + self.vn_bits + self.mac_bits

    @property
    def total_bytes(self) -> int:
        return self.entries * self.entry_bits // 8


@dataclass(frozen=True)
class HardwareBudget:
    """Full Sec.-6.5 storage/area inventory."""

    meta_table: MetaTableBudget = MetaTableBudget()
    tensor_filter: TensorFilterBudget = TensorFilterBudget()
    bitmap_cache_bytes: int = 6 * 1024
    poison_bits: int = 512

    def components_bytes(self) -> Dict[str, float]:
        return {
            "meta_table": float(self.meta_table.total_bytes),
            "tensor_filter": float(self.tensor_filter.total_bytes),
            "bitmap_cache": float(self.bitmap_cache_bytes),
            "poison_bits": self.poison_bits / 8.0,
        }

    @property
    def total_bytes(self) -> float:
        return sum(self.components_bytes().values())

    @property
    def total_kib(self) -> float:
        return self.total_bytes / 1024.0

    @property
    def area_mm2(self) -> float:
        return self.total_kib * MM2_PER_KIB_7NM
