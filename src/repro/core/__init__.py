"""End-to-end collaborative system: configurations, simulator, results."""

from repro.core.config import SystemConfig, SystemMode
from repro.core.results import StageBreakdown
from repro.core.system import CollaborativeSystem

__all__ = ["SystemConfig", "SystemMode", "StageBreakdown", "CollaborativeSystem"]
