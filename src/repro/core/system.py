"""End-to-end collaborative training iteration model (Figs. 5, 16, 17).

Composes the stage models along the ZeRO-Offload schedule (Fig. 1):

1. NPU fwd+bwd (systolic roofline x NPU-TEE MAC overhead),
2. NPU->CPU gradient transfer (protocol-dependent, may overlap backward),
3. CPU Adam (multicore memory model x CPU-TEE mode costs),
4. CPU->NPU weight transfer (protocol-dependent, may overlap compute).

The TensorTEE CPU costs use the *steady-state* TenAnalyzer hit rates
measured functionally by a scaled Adam experiment (LLM training runs tens
of thousands of iterations; the detection transient of Fig. 19 is
negligible, Sec. 6.2).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict

from repro.comm.scheduler import (
    TransferTiming,
    direct_transfer,
    graviton_transfer,
    plain_transfer,
)
from repro.core.config import SystemConfig, SystemMode
from repro.core.results import StageBreakdown
from repro.cpu.adam import AdamExperiment, AdamExperimentConfig
from repro.cpu.sgx import sgx_costs
from repro.cpu.tensortee_mode import AnalyzerRates, tensortee_costs
from repro.cpu.timing import ModeCosts, adam_latency, non_secure_costs
from repro.errors import ConfigError
from repro.npu.kernels import iteration_time_s
from repro.npu.mac import MacScheme
from repro.workloads.models import ModelConfig
from repro.workloads.zero_offload import ZeroOffloadSchedule


@lru_cache(maxsize=4)
def steady_state_rates(iterations: int = 8, seed: int = 2024) -> AnalyzerRates:
    """Measured steady-state TenAnalyzer rates from the scaled experiment.

    Transfer-descriptor installs are on: in the collaborative system the
    gradient/weight tensors appear in transfer instructions (Sec. 4.2).
    """
    experiment = AdamExperiment(
        AdamExperimentConfig(
            n_layers=8,
            lines_per_tensor=128,
            threads=8,
            meta_table_capacity=512,
            install_transfer_descriptors=True,
            seed=seed,
        )
    )
    records = experiment.run(iterations)
    return records[-1].rates


class CollaborativeSystem:
    """One configured CPU+NPU system; evaluates models per iteration."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config

    # -- per-stage models ------------------------------------------------------

    def _npu_overhead(self) -> float:
        mode = self.config.mode
        if mode is SystemMode.NON_SECURE:
            return 0.0
        if mode is SystemMode.SGX_MGX:
            scheme = MacScheme("mgx", self.config.baseline_mac_granule)
            return scheme.performance_overhead(self.config.npu)
        scheme = MacScheme("tensor", 0, delayed=True)
        return scheme.performance_overhead(self.config.npu)

    def _cpu_costs(self, protected_bytes: float) -> ModeCosts:
        mode = self.config.mode
        threads = self.config.cpu_threads
        protected = max(int(protected_bytes), 1 << 30)
        if mode is SystemMode.NON_SECURE:
            return non_secure_costs()
        if mode is SystemMode.SGX_MGX:
            return sgx_costs(self.config.cpu, protected_bytes=protected, threads=threads)
        return tensortee_costs(
            self.config.cpu,
            steady_state_rates(),
            threads=threads,
            protected_bytes=protected,
        )

    def _transfer(
        self,
        nbytes: float,
        overlap_fraction: float,
        compute_window_s: float,
        sender_is_npu: bool,
        n_tensors: int,
    ) -> TransferTiming:
        comm = self.config.comm
        mode = self.config.mode
        if mode is SystemMode.NON_SECURE:
            return plain_transfer(comm, nbytes, overlap_fraction, compute_window_s)
        if mode is SystemMode.SGX_MGX:
            return graviton_transfer(comm, nbytes, sender_is_npu=sender_is_npu)
        return direct_transfer(
            comm, nbytes, overlap_fraction, compute_window_s, n_tensors=n_tensors
        )

    # -- iteration ------------------------------------------------------------

    def iteration_breakdown(self, model: ModelConfig) -> StageBreakdown:
        """Latency decomposition of one training iteration of ``model``."""
        schedule = ZeroOffloadSchedule(model)
        volumes = schedule.volumes()
        grad_overlap, weight_overlap = schedule.overlap_fractions()

        npu_base = iteration_time_s(self.config.npu, model)
        npu_s = npu_base * (1.0 + self._npu_overhead())

        costs = self._cpu_costs(volumes.cpu_adam_bytes)
        cpu_s = adam_latency(
            self.config.cpu, volumes.n_params, self.config.cpu_threads, costs
        ).total_s

        # Gradients stream underneath backward (~2/3 of fwd+bwd) and the
        # per-layer CPU optimizer that starts as each layer's chunk lands.
        grad_window = npu_s * (2.0 / 3.0) + cpu_s * 0.8
        n_layer_tensors = max(1, model.n_layers)
        comm_g = self._transfer(
            volumes.grad_bytes,
            grad_overlap,
            grad_window,
            sender_is_npu=True,
            n_tensors=n_layer_tensors,
        )
        # Weight upload streams layer-by-layer behind the optimizer tail and
        # the next forward whenever the protocol permits transfer/compute
        # concurrency — the non-secure DMA and TensorTEE's direct channel
        # both do; the baseline serializes (graviton_transfer ignores the
        # overlap arguments).
        weight_window = cpu_s * 0.5 + npu_s / 3.0
        comm_w = self._transfer(
            volumes.weight_bytes,
            weight_overlap,
            weight_window,
            sender_is_npu=False,
            n_tensors=n_layer_tensors,
        )
        return StageBreakdown(
            model_name=model.name,
            mode=self.config.label,
            npu_s=npu_s,
            cpu_s=cpu_s,
            comm_w_s=comm_w.exposed_s,
            comm_g_s=comm_g.exposed_s,
            comm_w_busy_s=comm_w.busy_s,
            comm_g_busy_s=comm_g.busy_s,
        )


def compare_modes(model: ModelConfig, configs: Dict[str, SystemConfig]) -> Dict[str, StageBreakdown]:
    """Evaluate one model under several system configurations."""
    if not configs:
        raise ConfigError("need at least one configuration")
    return {
        label: CollaborativeSystem(config).iteration_breakdown(model)
        for label, config in configs.items()
    }
