"""DRAM timing models (DDR4-2400 x2 channels for the CPU, GDDR5 for the NPU).

A queue-free analytic model: streams are characterised by bytes moved and an
efficiency factor; random/metadata traffic pays a row-buffer-miss factor.
These are the Table-1 memory systems; the calibration rationale is in
DESIGN.md Sec. 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import CACHELINE_BYTES, gb_per_s


@dataclass(frozen=True)
class DramTimingModel:
    """Bandwidth/latency description of one memory system.

    ``peak_bw`` bytes/s, ``idle_latency_s`` of one line access,
    ``row_miss_factor`` multiplies the *effective cost* of poorly-localised
    (metadata) traffic, reflecting row-buffer misses and read-modify-write
    turnarounds.
    """

    name: str
    peak_bw: float
    idle_latency_s: float
    row_miss_factor: float = 2.0
    stream_efficiency: float = 0.85

    def __post_init__(self) -> None:
        if self.peak_bw <= 0 or self.idle_latency_s <= 0:
            raise ConfigError(f"{self.name}: bandwidth and latency must be positive")
        if not 0 < self.stream_efficiency <= 1:
            raise ConfigError(f"{self.name}: stream efficiency must be in (0, 1]")

    @property
    def effective_stream_bw(self) -> float:
        """Achievable sequential-stream bandwidth (bytes/s)."""
        return self.peak_bw * self.stream_efficiency

    def stream_time(self, nbytes: float) -> float:
        """Time to stream ``nbytes`` sequentially."""
        if nbytes < 0:
            raise ConfigError("cannot stream negative bytes")
        return nbytes / self.effective_stream_bw

    def effective_bytes(self, stream_bytes: float, metadata_bytes: float) -> float:
        """Bandwidth-equivalent demand of mixed stream + metadata traffic.

        Metadata lines are small, scattered and frequently read-modify-write,
        so each metadata byte costs ``row_miss_factor`` stream-bytes of DRAM
        time. This is the quantity compared against ``effective_stream_bw``.
        """
        if stream_bytes < 0 or metadata_bytes < 0:
            raise ConfigError("traffic volumes must be non-negative")
        return stream_bytes + self.row_miss_factor * metadata_bytes

    def line_latency(self, dependent_accesses: int = 0) -> float:
        """Latency of a demand line access plus ``dependent_accesses``
        serialized metadata accesses (a Merkle walk is a dependent chain)."""
        if dependent_accesses < 0:
            raise ConfigError("dependent access count must be >= 0")
        return self.idle_latency_s * (1 + dependent_accesses)


def ddr4_2400_2ch() -> DramTimingModel:
    """CPU memory from Table 1: DDR4-2400, 2 channels = 38.4 GB/s peak."""
    return DramTimingModel(
        name="ddr4-2400x2",
        peak_bw=gb_per_s(38.4),
        idle_latency_s=80e-9,
        row_miss_factor=2.0,
        stream_efficiency=0.85,
    )


def gddr5_npu() -> DramTimingModel:
    """NPU memory from Table 1: GDDR5, 40 GB @ 128 GB/s."""
    return DramTimingModel(
        name="gddr5",
        peak_bw=gb_per_s(128.0),
        idle_latency_s=120e-9,
        row_miss_factor=2.0,
        stream_efficiency=0.9,
    )


def bytes_per_line() -> int:
    """Convenience: the data payload of one transaction."""
    return CACHELINE_BYTES
