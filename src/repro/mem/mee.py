"""Functional Memory Encryption Engine.

The real-crypto write/read path over the simulated off-chip DRAM: counter-
mode AES-128 with (PA, VN) counters, 56-bit per-line MACs bound to
(C, PA, VN), and — when enabled — an 8-ary Bonsai Merkle Tree protecting
the off-chip VN lines (CPU/SGX configuration; the NPU keeps VNs on chip and
needs no tree, Sec. 2.2).

The *timing* of metadata traffic is modelled elsewhere
(:mod:`repro.cpu.metadata_model`); this class is the functional security
layer the attack tests exercise: tamper with the DRAM, the MAC store, the
VN store or the tree, and reads must raise.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple

from repro import vec
from repro.crypto.ctr import CounterModeCipher
from repro.crypto.mac import MacEngine
from repro.crypto.merkle import BonsaiMerkleTree
from repro.errors import ConfigError, IntegrityError, ReplayError
from repro.mem.backing import SimulatedDram
from repro.mem.layout import PageTable
from repro.sim.stats import Stats
from repro.units import CACHELINE_BYTES, MiB

LINE = CACHELINE_BYTES
VNS_PER_LEAF = 8


class FunctionalMee:
    """Encrypt/verify cachelines against an untrusted DRAM."""

    def __init__(
        self,
        aes_key: bytes,
        mac_key: bytes,
        name: str = "mee",
        dram: Optional[SimulatedDram] = None,
        page_table: Optional[PageTable] = None,
        protected_bytes: int = 4 * MiB,
        with_merkle: bool = True,
        stats: Optional[Stats] = None,
    ) -> None:
        if protected_bytes <= 0 or protected_bytes % LINE:
            raise ConfigError("protected region must be a positive multiple of 64B")
        self.name = name
        self.dram = dram if dram is not None else SimulatedDram(name=f"{name}.dram")
        self.pages = page_table if page_table is not None else PageTable()
        self.cipher = CounterModeCipher(aes_key)
        self.mac = MacEngine(mac_key)
        self.stats = stats if stats is not None else Stats(name)
        self._protected_lines = protected_bytes // LINE
        # Off-chip (untrusted, tamperable) metadata stores.
        self.vn_store: Dict[int, int] = {}
        self.mac_store: Dict[int, int] = {}
        self._base_pa: Optional[int] = None
        if with_merkle:
            n_leaves = max(1, self._protected_lines // VNS_PER_LEAF)
            self.merkle: Optional[BonsaiMerkleTree] = BonsaiMerkleTree(
                n_leaves, key=mac_key
            )
        else:
            self.merkle = None

    # -- address helpers ------------------------------------------------------

    def _pa_of(self, vaddr: int) -> int:
        if vaddr % LINE:
            raise ConfigError(f"{self.name}: unaligned line address {vaddr:#x}")
        return self.pages.translate(vaddr)

    def _line_index(self, pa: int) -> int:
        if self._base_pa is None:
            self._base_pa = pa - (pa % (1 << 30))
        index = (pa - self._base_pa) // LINE
        if not 0 <= index < self._protected_lines:
            raise ConfigError(
                f"{self.name}: PA {pa:#x} outside the protected region"
            )
        return index

    def _leaf_payload(self, leaf: int) -> bytes:
        base = leaf * VNS_PER_LEAF
        vns = [self.vn_store.get(base + i, 0) for i in range(VNS_PER_LEAF)]
        return struct.pack(f">{VNS_PER_LEAF}Q", *vns)

    @staticmethod
    def _unique_leaves(indices: Sequence[int]) -> List[int]:
        """Sorted unique Merkle leaves covering a batch of line indices."""
        if vec.enabled() and len(indices) > 1:
            np = vec.np
            return np.unique(np.asarray(indices, dtype=np.int64) // VNS_PER_LEAF).tolist()
        return sorted({index // VNS_PER_LEAF for index in indices})

    # -- write path -------------------------------------------------------------

    def write_line(self, vaddr: int, plaintext: bytes, vn: Optional[int] = None) -> Tuple[int, int]:
        """Encrypt and store one line.

        ``vn`` overrides the engine's own per-line VN bump (TenAnalyzer and
        the NPU's tensor tables supply their VNs; the SGX path passes None).
        Returns ``(old_mac, new_mac)`` so callers can fold the XOR delta
        into an on-chip tensor MAC (Sec. 4.3).
        """
        pa = self._pa_of(vaddr)
        index = self._line_index(pa)
        if vn is None:
            vn = self.vn_store.get(index, 0) + 1
        self.vn_store[index] = vn
        ciphertext = self.cipher.encrypt_line(plaintext, pa, vn)
        old_mac = self.mac_store.get(index, 0)
        new_mac = self.mac.line_mac(ciphertext, pa, vn)
        self.mac_store[index] = new_mac
        self.dram.write_line(pa, ciphertext)
        if self.merkle is not None:
            leaf = index // VNS_PER_LEAF
            self.merkle.update_leaf(leaf, self._leaf_payload(leaf))
            self.stats.add("merkle_updates")
        self.stats.add("writes")
        return old_mac, new_mac

    def write_lines(
        self,
        vaddrs: Sequence[int],
        plaintexts: bytes,
        vn: Optional[int] = None,
    ) -> Tuple[List[int], List[int]]:
        """Encrypt and store a whole stream of lines in one batch.

        ``plaintexts`` concatenates one full line per address; ``vn`` is
        the shared tensor VN (``None`` bumps each line's own VN, as in
        :meth:`write_line`). Returns the per-line ``(old_macs, new_macs)``
        lists. End state (DRAM, VN/MAC stores, Merkle tree, stats) is
        identical to a :meth:`write_line` loop; the batch encrypts all
        lines through one keystream call and touches each Merkle leaf
        once instead of once per line — the ``merkle_updates`` counter
        tracks leaves actually walked, so the batch reports fewer.
        """
        if len(plaintexts) != len(vaddrs) * LINE:
            raise ConfigError(
                f"{self.name}: batch must be {len(vaddrs)} lines of {LINE} bytes"
            )
        pas = [self._pa_of(vaddr) for vaddr in vaddrs]
        indices = [self._line_index(pa) for pa in pas]
        vns: List[int] = []
        for index in indices:
            line_vn = self.vn_store.get(index, 0) + 1 if vn is None else vn
            self.vn_store[index] = line_vn
            vns.append(line_vn)
        ciphertexts = self.cipher.encrypt_lines(plaintexts, pas, vns)
        new_macs = self.mac.line_macs(ciphertexts, LINE, pas, vns)
        old_macs: List[int] = []
        dram_write = self.dram.write_line
        for i, (pa, index) in enumerate(zip(pas, indices)):
            old_macs.append(self.mac_store.get(index, 0))
            self.mac_store[index] = new_macs[i]
            dram_write(pa, ciphertexts[i * LINE : (i + 1) * LINE])
        if self.merkle is not None:
            leaves = self._unique_leaves(indices)
            for leaf in leaves:
                self.merkle.update_leaf(leaf, self._leaf_payload(leaf))
            if leaves:
                self.stats.add("merkle_updates", len(leaves))
        self.stats.add("writes", len(vaddrs))
        return old_macs, new_macs

    # -- read path ----------------------------------------------------------------

    def read_line(
        self,
        vaddr: int,
        vn: Optional[int] = None,
        verify: bool = True,
    ) -> bytes:
        """Fetch, verify and decrypt one line.

        With ``vn=None`` the off-chip VN store is consulted and — when the
        engine has a Merkle tree — authenticated against the on-chip root
        first (this is what makes VN replay detectable). An on-chip VN
        supplied by the caller skips the tree entirely. ``verify=False``
        skips the MAC check (the NPU's delayed-verification pipeline calls
        back later via :meth:`line_mac_of`).
        """
        pa = self._pa_of(vaddr)
        index = self._line_index(pa)
        if vn is None:
            if self.merkle is not None:
                leaf = index // VNS_PER_LEAF
                self.merkle.verify_leaf(leaf, self._leaf_payload(leaf))
                self.stats.add("merkle_walks")
            vn = self.vn_store.get(index, 0)
        ciphertext = self.dram.read_line(pa)
        if verify:
            expected = self.mac_store.get(index, 0)
            actual = self.mac.line_mac(ciphertext, pa, vn)
            if actual != expected:
                self.stats.add("mac_failures")
                stored_vn = self.vn_store.get(index, 0)
                if stored_vn != vn or self._stale_mac(ciphertext, pa, vn, expected):
                    raise ReplayError(
                        f"{self.name}: stale data replayed at {vaddr:#x}"
                    )
                raise IntegrityError(
                    f"{self.name}: MAC mismatch at {vaddr:#x} (tampered)"
                )
        self.stats.add("reads")
        return self.cipher.decrypt_line(ciphertext, pa, vn)

    def read_lines(
        self,
        vaddrs: Sequence[int],
        vn: Optional[int] = None,
        verify: bool = True,
    ) -> bytes:
        """Fetch, verify and decrypt a whole stream of lines in one batch.

        Same semantics per line as :meth:`read_line` (shared tensor ``vn``
        or per-line off-chip VN with Merkle authentication); the batch
        decrypts every line through one keystream call. Verification
        failures re-raise through the scalar path so the replay/tamper
        classification is identical.
        """
        pas = [self._pa_of(vaddr) for vaddr in vaddrs]
        indices = [self._line_index(pa) for pa in pas]
        if vn is None:
            if self.merkle is not None:
                leaves = self._unique_leaves(indices)
                for leaf in leaves:
                    self.merkle.verify_leaf(leaf, self._leaf_payload(leaf))
                if leaves:
                    self.stats.add("merkle_walks", len(leaves))
            vns = [self.vn_store.get(index, 0) for index in indices]
        else:
            vns = [vn] * len(vaddrs)
        dram_read = self.dram.read_line
        ciphertexts = b"".join(dram_read(pa) for pa in pas)
        if verify:
            actual = self.mac.line_macs(ciphertexts, LINE, pas, vns)
            for i, index in enumerate(indices):
                if actual[i] != self.mac_store.get(index, 0):
                    # Replay the scalar read for its exact failure taxonomy.
                    self.read_line(vaddrs[i], vn=vn, verify=True)
        self.stats.add("reads", len(vaddrs))
        return self.cipher.decrypt_lines(ciphertexts, pas, vns)

    def _stale_mac(self, ciphertext: bytes, pa: int, vn: int, stored_mac: int) -> bool:
        """Heuristic replay classification: does the pair verify under an
        older VN? (Diagnostic only — both cases are rejected either way.)"""
        for old_vn in range(max(0, vn - 4), vn):
            if self.mac.line_mac(ciphertext, pa, old_vn) == stored_mac:
                return True
        return False

    def line_mac_of(self, vaddr: int, vn: int) -> int:
        """Recompute the MAC of the stored ciphertext under ``vn``.

        Used by the NPU's delayed-verification accumulator: per-line MACs
        are XOR-folded as lines stream in, and compared against the on-chip
        tensor MAC at the verification barrier.
        """
        pa = self._pa_of(vaddr)
        ciphertext = self.dram.read_line(pa)
        return self.mac.line_mac(ciphertext, pa, vn)

    def line_macs_of(self, vaddrs: Sequence[int], vn: int) -> List[int]:
        """Batch :meth:`line_mac_of`: stored-ciphertext MACs under ``vn``."""
        pas = [self._pa_of(vaddr) for vaddr in vaddrs]
        dram_read = self.dram.read_line
        ciphertexts = b"".join(dram_read(pa) for pa in pas)
        return self.mac.line_macs(ciphertexts, LINE, pas, [vn] * len(pas))

    def stored_mac(self, vaddr: int) -> int:
        """The off-chip stored MAC for a line (trusted-channel metadata)."""
        return self.mac_store.get(self._line_index(self._pa_of(vaddr)), 0)

    # -- attack surface ----------------------------------------------------------

    def tamper_ciphertext(self, vaddr: int, flip_bit: int = 0) -> None:
        """Corrupt the stored ciphertext of a line."""
        self.dram.flip_bit(self._pa_of(vaddr), flip_bit)

    def replay_line(self, vaddr: int, old_ciphertext: bytes, old_mac: int) -> None:
        """Write back a previously-snooped (ciphertext, MAC) pair."""
        pa = self._pa_of(vaddr)
        self.dram.write_line(pa, old_ciphertext)
        self.mac_store[self._line_index(pa)] = old_mac

    def snoop(self, vaddr: int) -> Tuple[bytes, int]:
        """Bus-snoop the (ciphertext, MAC) of a line."""
        pa = self._pa_of(vaddr)
        return self.dram.read_line(pa), self.mac_store.get(self._line_index(pa), 0)
