"""A set-associative write-back cache simulator with LRU replacement.

Used for the MEE metadata cache (Table 1: 32 KB) and for the LLC filter in
front of the write path. Functional-only: it tracks presence and dirtiness,
not contents (contents live in :class:`repro.mem.backing.SimulatedDram`).

Two layers:

- :class:`SetAssocCache` — the readable per-access simulator and the scalar
  reference the batched passes are verified against. Its ``access`` loop is
  deliberately kept in its original object form.
- :class:`LruCacheCore` — flat per-set ``dict`` state with plain-``int``
  counters, for the batched replay passes (``cpu/metadata_model.py``,
  ``eval/scenarios.py``). LRU replacement cannot be expressed as an array
  program — every access depends on the state the previous access left
  behind — so the batched passes win by stripping per-access overhead:
  no ``Stats`` calls, no per-line objects, one dict operation per touch.
  Replacement semantics are identical to :class:`SetAssocCache` (the
  parity tests in ``tests/test_trace_batch.py`` enforce it).

``access_many`` is the batch API on :class:`SetAssocCache` itself: behind
:func:`repro.vec.enabled` it runs one inlined loop over the shared set
state and folds counter deltas into ``Stats`` in bulk; the scalar
reference replays ``access`` per element. Same hits, same counters.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import vec
from repro.errors import ConfigError
from repro.sim.stats import Stats
from repro.units import CACHELINE_BYTES


class LruCacheCore:
    """Flat LRU residency state for the batched replay loops.

    Python dicts preserve insertion order, so each set is a plain ``dict``
    mapping ``tag -> dirty``: re-inserting on hit is ``move_to_end``, and
    ``next(iter(d))`` is the LRU victim. Counters are plain ints.
    """

    __slots__ = ("n_sets", "ways", "sets", "hits", "misses", "evictions", "writebacks")

    def __init__(self, n_sets: int, ways: int) -> None:
        if n_sets <= 0 or ways <= 0:
            raise ConfigError("cache sets and associativity must be positive")
        self.n_sets = n_sets
        self.ways = ways
        self.sets: List[Dict[int, bool]] = [{} for _ in range(n_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    @classmethod
    def for_cache(cls, capacity_bytes: int, ways: int = 8, line_bytes: int = CACHELINE_BYTES):
        """Core with the same geometry :class:`SetAssocCache` would use."""
        n_lines = capacity_bytes // line_bytes
        if n_lines < ways:
            raise ConfigError("cache smaller than one set")
        return cls(max(1, n_lines // ways), ways)

    def touch(self, line: int, write: bool = False) -> bool:
        """Touch line index ``line``; returns hit/miss. Misses fill."""
        cache_set = self.sets[line % self.n_sets]
        tag = line // self.n_sets
        dirty = cache_set.pop(tag, None)
        if dirty is not None:
            cache_set[tag] = dirty or write
            self.hits += 1
            return True
        self.misses += 1
        if len(cache_set) >= self.ways:
            if cache_set.pop(next(iter(cache_set))):
                self.writebacks += 1
            self.evictions += 1
        cache_set[tag] = bool(write)
        return False

    def contains(self, line: int) -> bool:
        """Presence check without LRU update or fill."""
        return line // self.n_sets in self.sets[line % self.n_sets]

    def flush(self) -> int:
        """Empty every set; returns (and counts) dirty lines written back."""
        dirty = 0
        for cache_set in self.sets:
            dirty += sum(1 for d in cache_set.values() if d)
            cache_set.clear()
        self.writebacks += dirty
        return dirty

    @property
    def resident(self) -> int:
        """How many lines are currently cached."""
        return sum(len(cache_set) for cache_set in self.sets)

    @property
    def hit_rate(self) -> float:
        """Fraction of touches that hit so far."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total


@dataclass
class CacheLineState:
    """Residency record for one cached line."""

    tag: int
    dirty: bool = False


class SetAssocCache:
    """LRU set-associative cache over line addresses.

    >>> c = SetAssocCache(capacity_bytes=1024, ways=2)
    >>> c.access(0)      # cold miss
    False
    >>> c.access(0)
    True
    """

    def __init__(
        self,
        capacity_bytes: int,
        ways: int = 8,
        line_bytes: int = CACHELINE_BYTES,
        name: str = "cache",
        stats: Optional[Stats] = None,
    ) -> None:
        if capacity_bytes <= 0 or ways <= 0:
            raise ConfigError("cache capacity and associativity must be positive")
        n_lines = capacity_bytes // line_bytes
        if n_lines < ways:
            raise ConfigError("cache smaller than one set")
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = max(1, n_lines // ways)
        self.name = name
        self.stats = stats if stats is not None else Stats(name)
        # Each set is an OrderedDict tag -> CacheLineState (LRU at front).
        self._sets: Dict[int, OrderedDict[int, CacheLineState]] = {}

    def _locate(self, addr: int) -> tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.n_sets, line // self.n_sets

    def access(self, addr: int, write: bool = False) -> bool:
        """Touch ``addr``; returns hit/miss. Misses fill the line."""
        set_index, tag = self._locate(addr)
        cache_set = self._sets.setdefault(set_index, OrderedDict())
        state = cache_set.get(tag)
        if state is not None:
            cache_set.move_to_end(tag)
            state.dirty = state.dirty or write
            self.stats.add("hits")
            return True
        self.stats.add("misses")
        if len(cache_set) >= self.ways:
            _, victim = cache_set.popitem(last=False)
            self.stats.add("evictions")
            if victim.dirty:
                self.stats.add("writebacks")
        cache_set[tag] = CacheLineState(tag=tag, dirty=write)
        return False

    def access_many(self, addrs: Sequence[int], write: bool = False) -> List[bool]:
        """Touch a stream of addresses; returns the per-address hit list.

        Vector mode runs one inlined loop over the shared set state and
        folds the counter deltas into ``Stats`` in bulk; scalar mode
        replays :meth:`access` per element. Same hits, same counters.
        """
        if not vec.enabled():
            return [self.access(addr, write) for addr in addrs]
        line_bytes = self.line_bytes
        if vec.HAVE_NUMPY and isinstance(addrs, vec.np.ndarray):
            lines = (addrs // line_bytes).tolist()
        else:
            lines = [addr // line_bytes for addr in addrs]
        sets = self._sets
        n_sets = self.n_sets
        ways = self.ways
        hits = 0
        evictions = 0
        writebacks = 0
        out: List[bool] = []
        append = out.append
        for line in lines:
            set_index = line % n_sets
            cache_set = sets.get(set_index)
            if cache_set is None:
                cache_set = sets[set_index] = OrderedDict()
            tag = line // n_sets
            state = cache_set.get(tag)
            if state is not None:
                cache_set.move_to_end(tag)
                state.dirty = state.dirty or write
                hits += 1
                append(True)
                continue
            if len(cache_set) >= ways:
                _, victim = cache_set.popitem(last=False)
                evictions += 1
                if victim.dirty:
                    writebacks += 1
            cache_set[tag] = CacheLineState(tag=tag, dirty=write)
            append(False)
        misses = len(lines) - hits
        if hits:
            self.stats.add("hits", hits)
        if misses:
            self.stats.add("misses", misses)
        if evictions:
            self.stats.add("evictions", evictions)
        if writebacks:
            self.stats.add("writebacks", writebacks)
        return out

    def contains(self, addr: int) -> bool:
        """Presence check without LRU update or fill."""
        set_index, tag = self._locate(addr)
        return tag in self._sets.get(set_index, {})

    def invalidate(self, addr: int) -> bool:
        """Drop a line if present; returns whether it was resident."""
        set_index, tag = self._locate(addr)
        cache_set = self._sets.get(set_index)
        if cache_set is None or tag not in cache_set:
            return False
        del cache_set[tag]
        self.stats.add("invalidations")
        return True

    def flush(self) -> int:
        """Empty the cache; returns how many dirty lines were written back."""
        dirty = 0
        for cache_set in self._sets.values():
            dirty += sum(1 for state in cache_set.values() if state.dirty)
        self._sets.clear()
        self.stats.add("flushes")
        self.stats.add("writebacks", dirty)
        return dirty

    @property
    def resident(self) -> int:
        """How many lines are currently cached."""
        return sum(len(cache_set) for cache_set in self._sets.values())

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit so far."""
        total = self.stats["hits"] + self.stats["misses"]
        if total == 0:
            return 0.0
        return self.stats["hits"] / total
