"""A set-associative write-back cache simulator with LRU replacement.

Used for the MEE metadata cache (Table 1: 32 KB) and for the LLC filter in
front of the write path. Functional-only: it tracks presence and dirtiness,
not contents (contents live in :class:`repro.mem.backing.SimulatedDram`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.sim.stats import Stats
from repro.units import CACHELINE_BYTES


@dataclass
class CacheLineState:
    """Residency record for one cached line."""

    tag: int
    dirty: bool = False


class SetAssocCache:
    """LRU set-associative cache over line addresses.

    >>> c = SetAssocCache(capacity_bytes=1024, ways=2)
    >>> c.access(0)      # cold miss
    False
    >>> c.access(0)
    True
    """

    def __init__(
        self,
        capacity_bytes: int,
        ways: int = 8,
        line_bytes: int = CACHELINE_BYTES,
        name: str = "cache",
        stats: Optional[Stats] = None,
    ) -> None:
        if capacity_bytes <= 0 or ways <= 0:
            raise ConfigError("cache capacity and associativity must be positive")
        n_lines = capacity_bytes // line_bytes
        if n_lines < ways:
            raise ConfigError("cache smaller than one set")
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = max(1, n_lines // ways)
        self.name = name
        self.stats = stats if stats is not None else Stats(name)
        # Each set is an OrderedDict tag -> CacheLineState (LRU at front).
        self._sets: Dict[int, OrderedDict[int, CacheLineState]] = {}

    def _locate(self, addr: int) -> tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.n_sets, line // self.n_sets

    def access(self, addr: int, write: bool = False) -> bool:
        """Touch ``addr``; returns hit/miss. Misses fill the line."""
        set_index, tag = self._locate(addr)
        cache_set = self._sets.setdefault(set_index, OrderedDict())
        state = cache_set.get(tag)
        if state is not None:
            cache_set.move_to_end(tag)
            state.dirty = state.dirty or write
            self.stats.add("hits")
            return True
        self.stats.add("misses")
        if len(cache_set) >= self.ways:
            _, victim = cache_set.popitem(last=False)
            self.stats.add("evictions")
            if victim.dirty:
                self.stats.add("writebacks")
        cache_set[tag] = CacheLineState(tag=tag, dirty=write)
        return False

    def contains(self, addr: int) -> bool:
        """Presence check without LRU update or fill."""
        set_index, tag = self._locate(addr)
        return tag in self._sets.get(set_index, {})

    def invalidate(self, addr: int) -> bool:
        """Drop a line if present; returns whether it was resident."""
        set_index, tag = self._locate(addr)
        cache_set = self._sets.get(set_index)
        if cache_set is None or tag not in cache_set:
            return False
        del cache_set[tag]
        self.stats.add("invalidations")
        return True

    def flush(self) -> int:
        """Empty the cache; returns how many dirty lines were written back."""
        dirty = 0
        for cache_set in self._sets.values():
            dirty += sum(1 for state in cache_set.values() if state.dirty)
        self._sets.clear()
        self.stats.add("flushes")
        self.stats.add("writebacks", dirty)
        return dirty

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit so far."""
        total = self.stats["hits"] + self.stats["misses"]
        if total == 0:
            return 0.0
        return self.stats["hits"] / total
