"""The MEE metadata cache (Table 1: 32 KB).

Caches off-chip security metadata — VN lines, MAC lines and Merkle-tree
nodes — in one shared structure. Each metadata object gets a synthetic line
address in a per-kind region so different kinds never alias.

A resident, *verified* Merkle node terminates a tree walk early (Sec. 2.2):
``covered_level`` reports the lowest cached level above a VN line, which the
MEE uses to decide how many tree levels a read must actually traverse.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence

from repro import vec
from repro.errors import ConfigError
from repro.mem.cache import SetAssocCache
from repro.sim.stats import Stats
from repro.units import CACHELINE_BYTES, KiB


class MetadataKind(enum.Enum):
    """What a cached metadata line holds."""

    VN = 0
    MAC = 1
    TREE = 2  # Merkle interior node; the level is encoded in the address


# Synthetic address regions, 2^40 apart so kinds never collide.
_REGION_STRIDE = 1 << 40


class MetadataCache:
    """Shared VN/MAC/Merkle-node cache with per-kind accounting."""

    def __init__(
        self,
        capacity_bytes: int = 32 * KiB,
        ways: int = 8,
        stats: Optional[Stats] = None,
    ) -> None:
        self.stats = stats if stats is not None else Stats("metadata_cache")
        self._cache = SetAssocCache(
            capacity_bytes=capacity_bytes,
            ways=ways,
            name="metadata",
            stats=self.stats.scope("cache"),
        )

    @staticmethod
    def _synthetic_addr(kind: MetadataKind, index: int, level: int = 0) -> int:
        if index < 0 or level < 0:
            raise ConfigError("metadata index/level must be non-negative")
        region = (kind.value * 8 + level) * _REGION_STRIDE
        return region + index * CACHELINE_BYTES

    def access(
        self,
        kind: MetadataKind,
        index: int,
        level: int = 0,
        write: bool = False,
    ) -> bool:
        """Touch metadata object ``index`` of ``kind``; returns hit/miss."""
        hit = self._cache.access(self._synthetic_addr(kind, index, level), write=write)
        label = kind.name.lower()
        self.stats.add(f"{label}_hits" if hit else f"{label}_misses")
        return hit

    def access_many(
        self,
        kind: MetadataKind,
        indices: Sequence[int],
        level: int = 0,
        write: bool = False,
    ) -> List[bool]:
        """Touch a stream of same-kind metadata objects; per-index hit list.

        Batch twin of :meth:`access`: vector mode computes the synthetic
        addresses as one array expression and folds the per-kind tallies
        into ``Stats`` in bulk; scalar mode replays :meth:`access` per
        element. Identical hits and identical counters either way.
        """
        if not vec.enabled():
            return [self.access(kind, index, level, write=write) for index in indices]
        if level < 0:
            raise ConfigError("metadata index/level must be non-negative")
        region = (kind.value * 8 + level) * _REGION_STRIDE
        if vec.HAVE_NUMPY and isinstance(indices, vec.np.ndarray):
            if len(indices) and int(indices.min()) < 0:
                raise ConfigError("metadata index/level must be non-negative")
            addrs: Sequence[int] = region + indices * CACHELINE_BYTES
        else:
            addrs = [self._synthetic_addr(kind, index, level) for index in indices]
        hits = self._cache.access_many(addrs, write=write)
        n_hits = sum(hits)
        n_misses = len(hits) - n_hits
        label = kind.name.lower()
        if n_hits:
            self.stats.add(f"{label}_hits", n_hits)
        if n_misses:
            self.stats.add(f"{label}_misses", n_misses)
        return hits

    def contains(self, kind: MetadataKind, index: int, level: int = 0) -> bool:
        """Presence probe without side effects."""
        return self._cache.contains(self._synthetic_addr(kind, index, level))

    def covered_level(self, vn_line_index: int, levels: int, arity: int = 8) -> int:
        """Lowest Merkle level (1-based) above ``vn_line_index`` that is cached.

        Returns ``levels`` (the root level) when nothing on the path is
        resident — the walk must then go all the way to the on-chip root.
        """
        node = vn_line_index
        for level in range(1, levels):
            node //= arity
            if self.contains(MetadataKind.TREE, node, level=level):
                return level
        return levels

    def flush(self) -> int:
        """Drop all metadata (context switch); returns dirty writebacks."""
        return self._cache.flush()

    @property
    def hit_rate(self) -> float:
        """Overall hit rate across kinds."""
        return self._cache.hit_rate
