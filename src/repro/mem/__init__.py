"""Memory substrate: address layout, simulated DRAM contents, caches, timing."""

from repro.mem.backing import SimulatedDram
from repro.mem.cache import SetAssocCache
from repro.mem.dram import DramTimingModel
from repro.mem.layout import PageTable, line_index, line_of, page_of
from repro.mem.metadata_cache import MetadataCache, MetadataKind

__all__ = [
    "SimulatedDram",
    "SetAssocCache",
    "DramTimingModel",
    "PageTable",
    "line_index",
    "line_of",
    "page_of",
    "MetadataCache",
    "MetadataKind",
]
