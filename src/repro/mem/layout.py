"""Virtual/physical address layout helpers.

TenAnalyzer operates on *virtual* addresses precisely because physical pages
are discontiguous (Fig. 9 of the paper): a tensor that is one contiguous VA
range maps to shuffled physical pages. :class:`PageTable` reproduces that
shuffling so the MEE (which works on PAs) and TenAnalyzer (VAs) disagree the
same way real hardware does.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.errors import ConfigError
from repro.units import CACHELINE_BYTES, PAGE_BYTES


def line_of(addr: int, line_bytes: int = CACHELINE_BYTES) -> int:
    """Line-align an address."""
    return addr - (addr % line_bytes)


def line_index(addr: int, line_bytes: int = CACHELINE_BYTES) -> int:
    """Index of the cacheline containing ``addr``."""
    return addr // line_bytes


def page_of(addr: int, page_bytes: int = PAGE_BYTES) -> int:
    """Page-align an address."""
    return addr - (addr % page_bytes)


class PageTable:
    """Deterministic VA→PA mapping with shuffled physical pages.

    Pages are assigned physical frames in a pseudo-random order seeded at
    construction, so contiguous virtual ranges become discontiguous physical
    ranges (Fig. 9a/b). The mapping is built lazily on first touch.
    """

    def __init__(self, phys_base: int = 0x10_0000_0000, seed: int = 0x5EED) -> None:
        self.phys_base = phys_base
        self._rng = random.Random(seed)
        self._va_to_frame: Dict[int, int] = {}
        self._next_frame = 0
        self._free_frames: list[int] = []

    def translate(self, vaddr: int) -> int:
        """Translate a virtual address to its physical address."""
        if vaddr < 0:
            raise ConfigError(f"negative virtual address {vaddr:#x}")
        vpage = page_of(vaddr)
        frame = self._va_to_frame.get(vpage)
        if frame is None:
            frame = self._allocate_frame()
            self._va_to_frame[vpage] = frame
        return self.phys_base + frame * PAGE_BYTES + (vaddr - vpage)

    def _allocate_frame(self) -> int:
        # Keep a small pool so allocation order is shuffled, modelling an OS
        # free list rather than a bump allocator.
        while len(self._free_frames) < 8:
            self._free_frames.append(self._next_frame)
            self._next_frame += 1
        pick = self._rng.randrange(len(self._free_frames))
        return self._free_frames.pop(pick)

    @property
    def mapped_pages(self) -> int:
        """Number of virtual pages touched so far."""
        return len(self._va_to_frame)
