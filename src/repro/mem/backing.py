"""Simulated off-chip DRAM contents.

This is the *untrusted* store of the threat model (Sec. 2.4): the functional
MEE writes only ciphertext here, and the attack harness
(:mod:`repro.tee.attack`) gets raw access so it can snoop, tamper with and
replay lines exactly like a bus adversary would.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.errors import ConfigError
from repro.units import CACHELINE_BYTES


class SimulatedDram:
    """A sparse, line-granular byte store."""

    def __init__(self, line_bytes: int = CACHELINE_BYTES, name: str = "dram") -> None:
        if line_bytes <= 0:
            raise ConfigError("line size must be positive")
        self.line_bytes = line_bytes
        self.name = name
        self._lines: Dict[int, bytes] = {}

    def _check_aligned(self, addr: int) -> None:
        if addr % self.line_bytes:
            raise ConfigError(
                f"{self.name}: address {addr:#x} not {self.line_bytes}B aligned"
            )

    def read_line(self, addr: int) -> bytes:
        """Read one line (absent lines read as zeros)."""
        self._check_aligned(addr)
        return self._lines.get(addr, bytes(self.line_bytes))

    def write_line(self, addr: int, data: bytes) -> None:
        """Write one full line."""
        self._check_aligned(addr)
        if len(data) != self.line_bytes:
            raise ConfigError(
                f"{self.name}: line write needs {self.line_bytes}B, got {len(data)}"
            )
        self._lines[addr] = bytes(data)

    def lines(self) -> Iterator[Tuple[int, bytes]]:
        """Iterate (address, contents) of every resident line."""
        yield from sorted(self._lines.items())

    @property
    def resident_lines(self) -> int:
        """Number of lines currently stored."""
        return len(self._lines)

    # -- attack surface ------------------------------------------------------

    def snoop(self, addr: int) -> bytes:
        """Bus-snoop a line (identical to read, named for threat-model use)."""
        return self.read_line(addr)

    def tamper(self, addr: int, data: bytes) -> None:
        """Physically overwrite a line, bypassing any protection layer."""
        self.write_line(addr, data)

    def flip_bit(self, addr: int, bit: int) -> None:
        """Flip a single bit of a stored line (targeted corruption)."""
        self._check_aligned(addr)
        raw = bytearray(self.read_line(addr))
        raw[bit // 8] ^= 1 << (bit % 8)
        self._lines[addr] = bytes(raw)
