"""``python -m repro`` — the experiment orchestrator CLI."""

import sys

from repro.cli import main

sys.exit(main())
