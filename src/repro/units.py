"""Physical units and helper constants used across the simulator.

Everything in the simulator is expressed in a small set of base units:

- sizes in **bytes** (with ``KiB``/``MiB``/``GiB`` helpers),
- bandwidth in **bytes per second**,
- time in **seconds** (cycle counts are converted through a clock domain,
  see :mod:`repro.sim.clock`).
"""

from __future__ import annotations

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

KB: int = 1000
MB: int = 1000 * KB
GB: int = 1000 * MB

#: Size of one cacheline (both CPU and NPU sides use 64-byte lines, Table 1).
CACHELINE_BYTES: int = 64

#: Default small page size used by the virtual-memory layout helpers.
PAGE_BYTES: int = 4096

#: Width of a version number in bits (Intel MEE-style, Sec. 2.2).
VN_BITS: int = 56

#: Width of a MAC in bits (Sec. 4.3 security analysis: 56-bit output space).
MAC_BITS: int = 56

NS = 1e-9
US = 1e-6
MS = 1e-3


def gib_per_s(value: float) -> float:
    """Convert GiB/s to bytes/s."""
    return value * GiB


def gb_per_s(value: float) -> float:
    """Convert (decimal) GB/s to bytes/s."""
    return value * GB


def lines_in(nbytes: int, line_bytes: int = CACHELINE_BYTES) -> int:
    """Number of cachelines covering ``nbytes`` (rounded up)."""
    return -(-nbytes // line_bytes)


def align_down(addr: int, granule: int) -> int:
    """Align ``addr`` down to a multiple of ``granule``."""
    return addr - (addr % granule)


def align_up(addr: int, granule: int) -> int:
    """Align ``addr`` up to a multiple of ``granule``."""
    return align_down(addr + granule - 1, granule)
