"""Versioning for machine-readable artifact documents.

``BENCH_*.json`` (:mod:`repro.perf.harness`) and ``sweep.json``
(:mod:`repro.eval.sweep`) carry an explicit ``schema_version`` field.
Writers stamp it; every reader calls :func:`check_schema_version` before
touching any other key, so an artifact recorded under an older layout
fails with a clear :class:`repro.errors.SchemaVersionError` (CLI exit 2)
instead of a KeyError from the middle of a comparison.

Documents written before the field existed carried the same number under
``schema``; the check accepts that spelling as a fallback so the error
message can say *which* version the old artifact has.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import SchemaVersionError


def schema_version_of(document: Mapping[str, Any]) -> object:
    """The version a document declares (``schema_version``, legacy
    ``schema``, or None when it declares nothing)."""
    if "schema_version" in document:
        return document["schema_version"]
    return document.get("schema")


def check_schema_version(
    document: Mapping[str, Any], expected: int, what: str, refresh_hint: str = ""
) -> None:
    """Refuse ``document`` unless it declares schema version ``expected``.

    ``what`` names the artifact in the error ("bench baseline", "shard
    sweep document ..."); ``refresh_hint`` tells the operator how to
    re-record it.
    """
    found = schema_version_of(document)
    if found == expected:
        return
    hint = f" {refresh_hint}" if refresh_hint else ""
    raise SchemaVersionError(
        f"{what} has schema version {found!r}, this reader expects {expected}.{hint}",
        expected=expected,
        found=found,
    )
