"""Compatibility shim: enables ``pip install -e .`` on environments whose
setuptools lacks PEP-660 editable-wheel support (no ``wheel`` package).
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
