#!/usr/bin/env python3
"""ZeRO-Offload LLM-training iteration under the three TEE configurations.

Reproduces the headline experiment for one model: the per-stage latency of
one collaborative training iteration (Fig. 1 stages) under non-secure,
SGX+MGX baseline, and TensorTEE, plus the speedup and overhead numbers of
Figs. 16/17.

Run: python examples/llm_training_zero_offload.py [model-name]
     (model names from Table 2, default GPT2-M; try OPT-6.7B)
"""

import sys

from repro.core.config import baseline_system, non_secure_system, tensortee_system
from repro.core.system import CollaborativeSystem
from repro.eval.tables import ascii_table
from repro.workloads.models import model_by_name
from repro.workloads.zero_offload import ZeroOffloadSchedule


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "GPT2-M"
    model = model_by_name(name)
    schedule = ZeroOffloadSchedule(model)
    volumes = schedule.volumes()
    print(f"model: {model.name} ({model.n_params / 1e6:.0f}M params, "
          f"batch {model.batch_size})")
    print(f"  per iteration: {volumes.npu_flops / 1e12:.1f} TFLOP on the NPU, "
          f"{volumes.grad_bytes / 1e9:.2f} GB gradients down, "
          f"{volumes.weight_bytes / 1e9:.2f} GB weights up, "
          f"{volumes.cpu_adam_bytes / 1e9:.2f} GB CPU optimizer traffic\n")

    systems = {
        "non-secure": CollaborativeSystem(non_secure_system()),
        "SGX+MGX": CollaborativeSystem(baseline_system()),
        "TensorTEE": CollaborativeSystem(tensortee_system()),
    }
    breakdowns = {label: s.iteration_breakdown(model) for label, s in systems.items()}
    rows = []
    for label, b in breakdowns.items():
        rows.append(
            (label, f"{b.npu_s:.3f}", f"{b.cpu_s:.3f}", f"{b.comm_w_s:.3f}",
             f"{b.comm_g_s:.3f}", f"{b.total_s:.3f}")
        )
    print(ascii_table(
        ["config", "NPU (s)", "CPU (s)", "Comm W (s)", "Comm G (s)", "total (s)"],
        rows,
    ))
    speedup = breakdowns["SGX+MGX"].total_s / breakdowns["TensorTEE"].total_s
    overhead = breakdowns["TensorTEE"].total_s / breakdowns["non-secure"].total_s - 1
    print(f"\nTensorTEE speedup over SGX+MGX: {speedup:.2f}x "
          f"(paper average: 4.0x)")
    print(f"TensorTEE overhead vs non-secure: {overhead * 100:.1f}% "
          f"(paper average: 2.1%)")


if __name__ == "__main__":
    main()
