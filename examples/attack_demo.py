#!/usr/bin/env python3
"""Threat-model walkthrough (Sec. 2.4): every attack is actually detected.

Plays the bus adversary against the functional security layer:

1. tampering with CPU enclave ciphertext   -> MAC failure,
2. replaying stale (ciphertext, MAC) pairs -> freshness failure,
3. rolling back the off-chip VN too        -> Merkle root mismatch,
4. tampering NPU data under delayed verification -> poison + barrier block,
5. tampering NPU *code*                    -> immediate (non-delayed) abort.

Run: python examples/attack_demo.py
"""

from repro.comm.direct import DirectTransferProtocol
from repro.errors import (
    CodeIntegrityError,
    IntegrityError,
    PoisonedTensorError,
    ReplayError,
    SecurityError,
)
from repro.tee.device import CpuSecureDevice, NpuSecureDevice
from repro.tee.enclave import Enclave, TrustDomain, mutual_attestation
from repro.tensor.dtype import DType


def expect(label: str, action, *exceptions) -> None:
    try:
        action()
    except exceptions as exc:
        print(f"  [DETECTED] {label}: {type(exc).__name__}: {exc}")
        return
    raise SystemExit(f"SECURITY HOLE: {label} went undetected!")


def main() -> None:
    domain = TrustDomain()
    cpu_enclave, npu_enclave = Enclave("cpu", b"code"), Enclave("npu", b"kernels")
    cpu_enclave.create(dh_seed=1)
    npu_enclave.create(dh_seed=2)
    keys, _ = mutual_attestation(cpu_enclave, npu_enclave, domain)
    cpu, npu = CpuSecureDevice(*keys), NpuSecureDevice(*keys)
    protocol = DirectTransferProtocol(cpu, npu, keys)

    print("1) ciphertext tampering on the CPU memory bus")
    secret = cpu.allocate("secret", (64,), DType.FP32)
    cpu.write_tensor(secret, bytes(range(256)))
    cpu.mee.tamper_ciphertext(secret.base_va, flip_bit=42)
    expect("bit-flip on stored ciphertext", lambda: cpu.read_tensor(secret),
           IntegrityError)
    cpu.write_tensor(secret, bytes(range(256)))  # repair for the next act

    print("2) replay of a previously snooped line")
    old_ct, old_mac = cpu.mee.snoop(secret.base_va)
    cpu.write_tensor(secret, bytes(256))
    cpu.mee.replay_line(secret.base_va, old_ct, old_mac)
    expect("stale (ciphertext, MAC) replay", lambda: cpu.read_tensor(secret),
           ReplayError, IntegrityError)
    cpu.write_tensor(secret, bytes(range(256)))

    print("3) full rollback including the off-chip VN store")
    snap_ct, snap_mac = cpu.mee.snoop(secret.base_va)
    snap_vn = cpu.mee.vn_store[cpu.mee._line_index(cpu.mee._pa_of(secret.base_va))]
    cpu.write_tensor(secret, bytes(256))
    cpu.mee.replay_line(secret.base_va, snap_ct, snap_mac)
    cpu.mee.vn_store[cpu.mee._line_index(cpu.mee._pa_of(secret.base_va))] = snap_vn
    expect("VN rollback (Merkle tree catches it)", lambda: cpu.read_tensor(secret),
           SecurityError)

    print("4) NPU data tampering under delayed verification")
    act = npu.allocate("activation", (64,), DType.FP32)
    out = npu.allocate("output", (64,), DType.FP32)
    host = cpu.allocate("gradient.out", (64,), DType.FP32)
    npu.write_tensor(act, bytes(range(256)))
    npu.mee.tamper_ciphertext(act.base_va, flip_bit=7)
    garbage = npu.engine.read_tensor_delayed(act)  # no stall — garbage data
    print(f"  delayed read returned silently garbled data "
          f"(poisoned={npu.mac_table.is_poisoned(act.tensor_id)})")
    npu.engine.propagate_poison([act], [out])
    npu.write_tensor(out, garbage)  # "computed" result of poisoned input
    expect("poisoned tensor crossing the verification barrier",
           lambda: protocol.npu_to_cpu(act, host),
           IntegrityError, PoisonedTensorError)

    print("5) NPU code tampering (non-delayed verification path)")
    code = npu.allocate("kernel.text", (64,), DType.FP32)
    npu.write_tensor(code, bytes(range(256)))
    npu.mee.tamper_ciphertext(code.base_va, flip_bit=3)
    expect("instruction-fetch tampering",
           lambda: npu.engine.read_code_line(code.base_va),
           CodeIntegrityError)

    print("\nall five attacks detected — the enclave boundary held.")


if __name__ == "__main__":
    main()
