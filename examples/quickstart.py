#!/usr/bin/env python3
"""Quickstart: attest two enclaves and move tensors without re-encryption.

Walks the whole TensorTEE story in ~40 lines of API:

1. enclave creation + mutual attestation + DH key exchange,
2. a CPU-side tensor written through TenAnalyzer + the functional MEE,
3. a direct (no re-encryption) transfer to the NPU and back,
4. the verification barrier guarding what leaves the NPU enclave.

Run: python examples/quickstart.py
"""

from repro.comm.direct import DirectTransferProtocol
from repro.tee.device import CpuSecureDevice, NpuSecureDevice
from repro.tee.enclave import Enclave, TrustDomain, mutual_attestation
from repro.tensor.dtype import DType


def main() -> None:
    # -- authentication phase (Sec. 4.4.2) ---------------------------------
    domain = TrustDomain()
    cpu_enclave = Enclave("cpu", code=b"optimizer binary")
    npu_enclave = Enclave("npu", code=b"training kernels")
    cpu_enclave.create(dh_seed=7)
    npu_enclave.create(dh_seed=8)
    session_keys, _ = mutual_attestation(cpu_enclave, npu_enclave, domain)
    print("attestation OK — both enclaves hold the same session keys")

    cpu = CpuSecureDevice(*session_keys)
    npu = NpuSecureDevice(*session_keys)
    protocol = DirectTransferProtocol(cpu, npu, session_keys)

    # -- CPU -> NPU weight transfer -----------------------------------------
    w_cpu = cpu.allocate("layer0.weight16", (1024,), DType.FP16)
    w_npu = npu.allocate("layer0.weight16", (1024,), DType.FP16)
    weights = bytes(i % 251 for i in range(w_cpu.nbytes))
    cpu.write_tensor(w_cpu, weights)
    protocol.cpu_to_npu(w_cpu, w_npu)
    received = npu.read_tensor_delayed(w_npu)
    assert received == weights
    print(f"weights: {w_cpu.nbytes} B moved CPU->NPU as raw ciphertext, "
          "decrypted + verified on the NPU")

    # -- NPU -> CPU gradient transfer (barrier enforced) ---------------------
    g_npu = npu.allocate("layer0.grad32", (1024,), DType.FP32)
    g_cpu = cpu.allocate("layer0.grad32", (1024,), DType.FP32)
    grads = bytes((3 * i) % 256 for i in range(g_npu.nbytes))
    npu.write_tensor(g_npu, grads)
    protocol.npu_to_cpu(g_npu, g_cpu)
    assert cpu.read_tensor(g_cpu) == grads
    entry = cpu.analyzer.table.entry_of(g_cpu.base_va)
    print(f"gradients: {g_npu.nbytes} B moved NPU->CPU; transfer descriptor "
          f"installed a Meta Table entry (vn={entry.vn})")

    hits = cpu.analyzer.hit_rates()
    print(f"CPU TenAnalyzer read hits so far: hit_in={hits['hit_in']:.2f} "
          f"hit_all={hits['hit_all']:.2f}")


if __name__ == "__main__":
    main()
