#!/usr/bin/env python3
"""TenAnalyzer detecting tiled tensors in a GEMM (Sec. 6.2, Fig. 11b).

Runs the paper's 256x256 matrix multiply with 64x64 tiles through the
functional TenAnalyzer and shows how the short tile-row entries are merged
across four directions into whole-matrix entries, reaching the ~98.8%
hit_in rate the paper reports on the pass after detection.

Run: python examples/gemm_tensor_detection.py
"""

from repro.cpu.gemm import GemmExperiment
from repro.workloads.traces import GemmConfig


def main() -> None:
    experiment = GemmExperiment(GemmConfig(m=256, n=256, k=256,
                                           tile_m=64, tile_n=64, tile_k=64))
    print("pass 0: cold detection (tile rows -> filter -> strided merges)")
    for pass_index in range(3):
        stats = experiment.run_pass()
        print(f"  pass {stats.pass_index}: hit_in={stats.hit_in:.3f} "
              f"hit_boundary={stats.hit_boundary:.3f} hit_all={stats.hit_all:.3f} "
              f"entries={stats.n_entries}")
    print("\nsurviving Meta Table entries (merged geometry):")
    for entry in sorted(experiment.analyzer.table.entries(),
                        key=lambda e: e.geometry.base_va):
        g = entry.geometry
        kind = "contiguous" if g.is_contiguous else f"2D stride={g.stride_lines}"
        print(f"  base={g.base_va:#x} lines={g.n_lines:5d} ({kind}) "
              f"vn={entry.vn} source={entry.source}")
    merges = experiment.analyzer.stats.scope("meta_table")["merges"]
    print(f"\ntotal merges performed: {merges:.0f} "
          "(paper: one GEMM suffices to build the structures, 98.8% hit_in)")


if __name__ == "__main__":
    main()
