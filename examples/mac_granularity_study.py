#!/usr/bin/env python3
"""MAC-granularity design-space study (Fig. 20) with an ablation.

Sweeps the NPU MAC granularity from 64 B to 4 KB plus TensorTEE's
tensor-wise delayed scheme, then ablates the two mechanisms that make the
sweep look the way it does: the DMA stall window (how much of a granule's
verification wait the pipeline can hide) and the delayed-verification
barrier tail.

Run: python examples/mac_granularity_study.py
"""

from repro.eval.registry import REGISTRY
from repro.eval.tables import ascii_table
from repro.npu.config import NpuConfig
from repro.npu.mac import MacScheme
from repro.units import KiB


def main() -> None:
    print(REGISTRY.get("fig20_mac_granularity").execute().text)

    print("\nAblation 1 — stall window (DMA streaming depth):")
    rows = []
    for window_kib in (8, 16, 32, 64):
        config = NpuConfig(stall_window_bytes=window_kib * KiB)
        overheads = [
            f"{MacScheme(f'{g}', g).performance_overhead(config) * 100:.1f}%"
            for g in (256, 1024, 4096)
        ]
        rows.append((f"{window_kib} KiB", *overheads))
    print(ascii_table(["window", "256B", "1KB", "4KB"], rows))
    print("  -> deeper streaming hides more of the granule wait; the paper's")
    print("     13% @4KB corresponds to the 32 KiB default.")

    print("\nAblation 2 — delayed verification barrier tail:")
    rows = []
    for tail in (0.01, 0.025, 0.05):
        config = NpuConfig(barrier_tail_fraction=tail)
        ours = MacScheme("tensor", 0, delayed=True)
        rows.append((f"{tail * 100:.1f}%", f"{ours.performance_overhead(config) * 100:.1f}%"))
    print(ascii_table(["configured tail", "tensor-wise overhead"], rows))
    print("  -> the 2.5% the paper reports is purely the barrier/bookkeeping")
    print("     tail; storage stays on-chip at any setting.")

    print("\nNon-delayed tensor-wise (Fig. 13b ablation):")
    config = NpuConfig()
    eager = MacScheme("tensor-eager", 0, delayed=False)
    print(f"  whole-tensor MAC verified *before* compute: "
          f"{eager.performance_overhead(config) * 100:.0f}% overhead "
          "(the stall Fig. 13b shows, and why delaying matters)")


if __name__ == "__main__":
    main()
